"""Session: one agent solving one problem, with full trajectory logging."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass
class Step:
    """One agent↔cloud interaction."""

    index: int
    time: float
    action_raw: str          # the string the agent produced
    action_name: str         # parsed API name ("get_logs", "exec_shell", ...)
    action_args: tuple
    observation: str         # what the environment returned (agent-facing)
    valid: bool = True       # False when the action failed to parse/execute
    shell_command: str = ""  # first token of an exec_shell command, if any
    #: structured Observation extras (machine-readable result + exported
    #: artifact paths) for analytics/judges; empty for plain-string actions
    payload: dict = field(default_factory=dict)
    artifacts: tuple = ()


@dataclass
class Session:
    """Trajectory and accounting for one problem instance (§2.2.2)."""

    pid: str
    agent_name: str
    started_at: float = 0.0
    ended_at: Optional[float] = None
    steps: list[Step] = field(default_factory=list)
    input_tokens: int = 0
    output_tokens: int = 0
    solution: Any = None
    submitted: bool = False

    def elapsed(self) -> float:
        end = self.ended_at if self.ended_at is not None else self.started_at
        return max(end - self.started_at, 0.0)

    def add_step(self, step: Step) -> None:
        self.steps.append(step)

    def add_tokens(self, input_tokens: int, output_tokens: int) -> None:
        self.input_tokens += int(input_tokens)
        self.output_tokens += int(output_tokens)

    # -- trajectory analytics (used by the bench figures) --------------------
    def action_histogram(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for s in self.steps:
            counts[s.action_name] = counts.get(s.action_name, 0) + 1
        return counts

    def shell_command_histogram(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for s in self.steps:
            if s.action_name == "exec_shell" and s.shell_command:
                counts[s.shell_command] = counts.get(s.shell_command, 0) + 1
        return counts

    def transcript(self, max_obs_chars: int = 400) -> str:
        """Human-readable trajectory (for debugging and the LLM judge)."""
        lines = [f"# Session {self.pid} — agent {self.agent_name}"]
        for s in self.steps:
            obs = s.observation
            if len(obs) > max_obs_chars:
                obs = obs[:max_obs_chars] + " …[truncated]"
            lines.append(f"[{s.index}] t={s.time:.0f}s  {s.action_raw}")
            lines.append(f"    -> {obs}")
        if self.submitted:
            lines.append(f"submitted: {self.solution!r}")
        return "\n".join(lines)
