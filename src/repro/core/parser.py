"""Parsing agent action strings into ACI calls.

Agents produce Python-call-like strings (``get_logs("ns", "geo")``).  The
parser is deliberately strict — malformed calls return an error observation
the agent must recover from, reproducing the invalid-API-usage failure mode
§3.6.3 analyzes.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Any, Sequence

_CALL_RE = re.compile(r"^\s*(\w+)\s*\((.*)\)\s*$", re.DOTALL)

#: the default action surface — kept in sync with the full TaskActions
#: registry (asserted by tests) so the deprecated extract_api_docs() /
#: parse_action() defaults stay consistent; sessions pass their registry's
#: names instead, so per-task surfaces parse correctly
VALID_ACTIONS = ("get_logs", "get_metrics", "get_traces", "exec_shell",
                 "restart_service", "submit")


@dataclass
class ParsedAction:
    """A successfully parsed action."""

    name: str
    args: tuple
    kwargs: dict[str, Any]


class ActionParseError(ValueError):
    """Raised when the agent's output is not a valid ACI call."""


def parse_action(text: str,
                 valid_actions: Sequence[str] = VALID_ACTIONS) -> ParsedAction:
    """Parse one action string; raises :class:`ActionParseError` with an
    agent-readable message on failure.

    ``valid_actions`` is the session's action surface (an
    :class:`~repro.core.actions.ActionRegistry`'s names); the default is the
    seed's fixed five-action tuple for back compatibility.
    """
    if not text or not text.strip():
        raise ActionParseError(
            "Error: empty action. Respond with exactly one API call, e.g. "
            'get_logs("<namespace>", "<service>").')
    candidate = _extract_call_line(text, valid_actions)
    m = _CALL_RE.match(candidate)
    if m is None:
        raise ActionParseError(
            f"Error: could not parse action {candidate[:120]!r}. Respond with "
            f"exactly one API call such as exec_shell(\"kubectl get pods -n ns\").")
    name, arg_str = m.group(1), m.group(2).strip()
    if name not in valid_actions:
        raise ActionParseError(
            f'Error: unknown API "{name}". Valid APIs: {", ".join(valid_actions)}.')
    args: tuple
    kwargs: dict[str, Any]
    if not arg_str:
        args, kwargs = (), {}
    else:
        try:
            call = ast.parse(f"__f__({arg_str})", mode="eval").body
            if not isinstance(call, ast.Call):
                raise ValueError("not a call")
            args = tuple(ast.literal_eval(a) for a in call.args)
            kwargs = {
                kw.arg: ast.literal_eval(kw.value)
                for kw in call.keywords if kw.arg is not None
            }
        except (ValueError, SyntaxError) as e:
            # strip object reprs (``<ast.Name object at 0x7f...>``) from the
            # message: memory addresses would make the observation text —
            # and thus recorded trajectories — differ between identical runs
            reason = re.sub(r"<(\S+) object at 0x[0-9a-f]+>", r"<\1>", str(e))
            raise ActionParseError(
                f"Error: malformed arguments for {name}: {reason}. Arguments "
                f"must be literals (strings, numbers, lists, dicts).") from None
    return ParsedAction(name=name, args=args, kwargs=kwargs)


def _extract_call_line(text: str,
                       valid_actions: Sequence[str] = VALID_ACTIONS) -> str:
    """Pull the API call out of surrounding prose (ReAct-style output)."""
    text = text.strip()
    # strip markdown fences
    text = re.sub(r"^```(?:python)?\s*|\s*```$", "", text, flags=re.MULTILINE).strip()
    if _CALL_RE.match(text):
        return text
    for line in text.splitlines():
        line = line.strip()
        for action in valid_actions:
            idx = line.find(action + "(")
            if idx >= 0:
                depth = 0
                for i in range(idx, len(line)):
                    if line[i] == "(":
                        depth += 1
                    elif line[i] == ")":
                        depth -= 1
                        if depth == 0:
                            return line[idx:i + 1]
                return line[idx:]
    return text
