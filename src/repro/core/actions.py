"""Typed action registry and structured observations (Orchestrator v2 ACI).

The seed framework hardcoded the agent action surface as "every public
method on :class:`~repro.core.aci.TaskActions`" and rendered API docs by
reflecting over that class.  This module replaces both mechanisms:

* :func:`action` — a decorator that registers a method as an agent action,
  optionally restricted to specific task types (e.g. mitigation-only
  actions).  Everything the Orchestrator needs (name, signature, docs,
  task surface) hangs off the registry, not off ``dir(obj)``.
* :class:`Observation` — the structured result of one action: agent-facing
  text, machine-readable payload, and the artifact paths the action saved.
  It deliberately speaks enough of the ``str`` protocol (``in``,
  ``startswith``, ``str()``) that call sites written against bare strings
  keep working.
* :class:`ActionRegistry` — the set of actions exposed to one session,
  with auto-rendered API docs (superseding ``extract_api_docs``).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional

_ACTION_ATTR = "__aci_action__"


#: error prefixes emitted across the stack: the ACI ("Error:"), the kubectl
#: facade ("error:", "Error from server"), the shell policy ("PolicyError:"),
#: and the shell itself ("sh: command not found").  Best-effort — actions
#: that know they failed should return Observation.error(...) explicitly.
_ERROR_PREFIXES = ("error:", "error from", "policyerror", "sh:")


class Observation(str):
    """What one agent action produced (§2.2.1's "high-quality feedback").

    A ``str`` subclass: the string value is the compact, agent-readable
    rendering fed back into the loop, so every call site written against
    the seed's bare strings (slicing, ``==``, ``in``, ``splitlines``, …)
    keeps working unchanged.  The structure rides on top:

    artifacts:
        Filesystem paths the action exported (logs/metrics/traces dumps).
    payload:
        Machine-readable result for programmatic consumers (benchmark
        analytics, judges) — never shown to the agent.
    ok:
        False when the action failed and the text is an error message.
    """

    artifacts: tuple[str, ...]
    payload: dict[str, Any]
    ok: bool

    def __new__(cls, text: str = "",
                artifacts: tuple[str, ...] = (),
                payload: Optional[dict[str, Any]] = None,
                ok: bool = True) -> "Observation":
        obs = super().__new__(cls, text)
        obs.artifacts = tuple(artifacts)
        obs.payload = dict(payload) if payload else {}
        obs.ok = ok
        return obs

    @property
    def text(self) -> str:
        """The agent-facing rendering (== the string value itself)."""
        return str(self)

    @classmethod
    def error(cls, text: str, **payload: Any) -> "Observation":
        """An error observation (text must already be agent-readable)."""
        return cls(text, ok=False, payload=payload)

    @classmethod
    def of(cls, value: Any) -> "Observation":
        """Coerce an arbitrary action return value into an Observation."""
        if isinstance(value, Observation):
            return value
        text = str(value)
        return cls(text,
                   ok=not text.lstrip().lower().startswith(_ERROR_PREFIXES))


@dataclass(frozen=True)
class ActionSpec:
    """Registry metadata for one agent action."""

    name: str
    func: Callable[..., Any]
    #: task types the action is exposed to; None means every task
    task_types: Optional[frozenset[str]] = None

    def available_for(self, task_type: str) -> bool:
        return self.task_types is None or not task_type \
            or task_type in self.task_types

    def signature(self) -> str:
        sig = inspect.signature(self.func)
        params = [p for p in sig.parameters.values() if p.name != "self"]
        return ", ".join(str(p) for p in params)

    def doc(self) -> str:
        return inspect.getdoc(self.func) or ""

    def render(self) -> str:
        return f"{self.name}({self.signature()})\n{self.doc()}"


def action(func: Optional[Callable] = None, *,
           name: Optional[str] = None,
           task_types: Optional[Iterable[str]] = None) -> Callable:
    """Mark a method as an agent action.

    Usage::

        class MyActions:
            @action
            def get_logs(self, namespace: str) -> Observation: ...

            @action(task_types=("mitigation",))
            def restart_service(self, service: str) -> Observation: ...

    The decorated function stays a plain method — the decorator only
    attaches registry metadata, so direct calls keep working.
    """

    def mark(fn: Callable) -> Callable:
        spec = ActionSpec(
            name=name or fn.__name__,
            func=fn,
            task_types=frozenset(task_types) if task_types is not None else None,
        )
        setattr(fn, _ACTION_ATTR, spec)
        return fn

    if func is not None:  # bare @action
        return mark(func)
    return mark


class ActionRegistry:
    """The action surface one session exposes to its agent.

    Built from any class whose methods carry :func:`action` marks;
    optionally narrowed to one task type so e.g. mitigation-only actions
    never appear in a detection session's docs or parse set.
    """

    def __init__(self, specs: Iterable[ActionSpec],
                 task_type: str = "") -> None:
        self.task_type = task_type
        self._specs: dict[str, ActionSpec] = {
            s.name: s for s in sorted(specs, key=lambda s: s.name)
            if s.available_for(task_type)
        }

    # ------------------------------------------------------------------
    @staticmethod
    def _inherited_spec(actions_cls: type, name: str) -> Optional[ActionSpec]:
        """Find the @action mark for ``name`` anywhere in the MRO, so an
        undecorated override of a registered action stays registered."""
        for base in actions_cls.__mro__:
            fn = base.__dict__.get(name)
            spec = getattr(fn, _ACTION_ATTR, None) if fn is not None else None
            if spec is not None:
                return spec
        return None

    @classmethod
    def from_class(cls, actions_cls: type,
                   task_type: str = "") -> "ActionRegistry":
        """Collect the action surface of ``actions_cls``.

        Every public method is an action — the seed's reflection
        semantics, so v1-style classes (and undecorated methods added to
        subclasses) keep working.  An :func:`action` mark adds metadata:
        an explicit name or a task-type restriction.  Marks are looked up
        through the MRO, so subclasses may override an action without
        re-decorating it (the override inherits the parent's
        registration).  Helpers that must not become actions stay private
        (underscore-prefixed).
        """
        specs = []
        for name, member in inspect.getmembers(actions_cls, inspect.isfunction):
            if name.startswith("_"):
                continue
            spec = cls._inherited_spec(actions_cls, name)
            if spec is None:
                spec = ActionSpec(name=name, func=member)
            elif spec.func is not member:  # bind the overriding function
                spec = ActionSpec(name=spec.name, func=member,
                                  task_types=spec.task_types)
            specs.append(spec)
        return cls(specs, task_type=task_type)

    def for_task(self, task_type: str) -> "ActionRegistry":
        """A narrowed registry exposing only that task's actions."""
        return ActionRegistry(self._specs.values(), task_type=task_type)

    # ------------------------------------------------------------------
    def names(self) -> tuple[str, ...]:
        return tuple(self._specs)

    def get(self, name: str) -> ActionSpec:
        return self._specs[name]

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self):
        return iter(self._specs.values())

    # ------------------------------------------------------------------
    def render_docs(self) -> str:
        """Auto-render the API documentation block shared with the agent.

        Mirrors the paper's behaviour ("the Orchestrator automatically
        extracts documentation from these APIs to provide as context C"),
        now driven by the registry instead of class reflection.
        """
        return "\n\n".join(spec.render() for spec in self._specs.values())

    def execute(self, instance: Any, name: str, /,
                *args: Any, **kwargs: Any) -> Observation:
        """Invoke a registered action on ``instance`` and coerce the result."""
        spec = self._specs[name]
        return Observation.of(spec.func(instance, *args, **kwargs))

    def bind_errors(self, name: str, args: tuple, kwargs: dict) -> Optional[str]:
        """Check ``args``/``kwargs`` against the action's signature.

        Returns an agent-readable error string when the call cannot bind,
        None when the arguments fit.  Lets the Orchestrator distinguish
        "you called the API wrong" from "the API itself raised TypeError".
        """
        spec = self._specs[name]
        try:
            inspect.signature(spec.func).bind(None, *args, **kwargs)
        except TypeError as e:
            return f"Error: invalid arguments for {name}: {e}"
        return None
