"""Problem definition: the ⟨T, C, S⟩ tuple and the four task interfaces (§2.1).

Users define new problems exactly like the paper's Example 2.1: subclass a
task interface, point it at an app, a fault and a target, and give the
expected solution.
"""

from __future__ import annotations

from typing import Any, Optional, Type

from repro.apps.base import App
from repro.apps import HotelReservation, SocialNetwork
from repro.core.env import CloudEnvironment, EnvSpec
from repro.core.evaluator import system_healthy
from repro.faults import (
    INJECTOR_CLASSES as _INJECTOR_CLASSES,
    FaultSpec,
    get_fault_spec,
)

_APP_CLASSES: dict[str, Type[App]] = {
    "HotelReservation": HotelReservation,
    "SocialNetwork": SocialNetwork,
}


class Problem:
    """Base problem: task ``T``, context ``C = ⟨E, I⟩`` and solution ``S``.

    Parameters
    ----------
    fault:
        The Table-2 fault name or number (resolved via the fault library),
        or None for a no-fault (Noop) problem.
    target:
        The service the fault is injected into.
    app_name:
        Which application the problem runs on (overrides the fault's
        default application; used by Noop).
    """

    task_type: str = "generic"
    #: seconds of healthy traffic before injection
    warmup_seconds: float = 30.0
    #: seconds of faulty traffic before the agent is engaged
    fault_soak_seconds: float = 30.0
    workload_rate: float = 60.0
    #: request-execution fidelity tier (see repro.core.env.FIDELITY_TIERS):
    #: every benchmark problem stays "per_request" (bit-identical results);
    #: detection/localization-style problems whose grading reads only
    #: aggregate telemetry may opt into "aggregate" for high-rate runs.
    fidelity: str = "per_request"

    def __init__(
        self,
        fault: Optional[str | int],
        target: Optional[str] = None,
        app_name: Optional[str] = None,
        pid: Optional[str] = None,
    ) -> None:
        self.spec: Optional[FaultSpec] = (
            get_fault_spec(fault) if fault is not None else None
        )
        if self.spec is not None and self.spec.injector == "none":
            self.spec = None  # Noop behaves like no fault at all
        resolved_app = app_name or (self.spec.application if self.spec else None)
        if resolved_app not in _APP_CLASSES:
            raise ValueError(f"unknown application {resolved_app!r}")
        self.app_name = resolved_app
        self.app_cls = _APP_CLASSES[resolved_app]
        if target is None and self.spec is not None:
            defaults = self.spec.targets.get(resolved_app, ())
            target = defaults[0] if defaults else None
        self.target = target
        self.ans: Any = target
        self.pid = pid or self._default_pid()
        self.injected_at: Optional[float] = None
        self._injector = None

    def _default_pid(self) -> str:
        fault_key = self.spec.fault_key if self.spec else "noop"
        app_short = "hotel_res" if self.app_name == "HotelReservation" else "social_net"
        return f"{fault_key}_{app_short}-{self.task_type}-{self.target or 'none'}"

    # ------------------------------------------------------------------
    # lifecycle (called by the Orchestrator)
    # ------------------------------------------------------------------
    def env_spec(self, seed: int = 0) -> EnvSpec:
        """The declarative environment configuration for this problem."""
        return EnvSpec(seed=seed, workload_rate=self.workload_rate,
                       fidelity=self.fidelity)

    def create_environment(self, seed: int = 0) -> CloudEnvironment:
        return CloudEnvironment.from_spec(self.app_cls, self.env_spec(seed))

    def start_workload(self, env: CloudEnvironment) -> None:
        """Warm the system up with healthy traffic."""
        env.advance(self.warmup_seconds)

    def inject_fault(self, env: CloudEnvironment) -> None:
        """Inject the fault and let it soak so telemetry shows it."""
        if self.spec is None:
            self.injected_at = env.clock.now
            env.advance(self.fault_soak_seconds)
            return
        injector_cls = _INJECTOR_CLASSES[self.spec.injector]
        self._injector = injector_cls(env.app)
        self._injector._inject([self.target], self.spec.fault_key)
        self.injected_at = env.clock.now
        env.advance(self.fault_soak_seconds)

    def recover_fault(self, env: CloudEnvironment) -> None:
        """Oracle recovery (used for cleanup and for testing solvability)."""
        if self._injector is not None:
            self._injector.recover_all()

    # ------------------------------------------------------------------
    # the I in C: information shared with the agent
    # ------------------------------------------------------------------
    def problem_description(self, env: CloudEnvironment) -> str:
        services = ", ".join(sorted(env.app.services))
        return (
            f"You are an AIOps agent operating the {self.app_name} "
            f"microservice application deployed in Kubernetes namespace "
            f'"{env.namespace}".\n'
            f"Services: {services}.\n"
            f"A live workload is running against the frontend "
            f"({env.app.frontend_url}).\n"
            f"Task: {self.task_instructions()}"
        )

    def task_instructions(self) -> str:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def eval(self, soln: Any, trace: Any, duration: float,
             env: Optional[CloudEnvironment] = None) -> dict:
        """Task-specific grading; subclasses extend the returned dict."""
        raise NotImplementedError


def _norm(s: Any) -> str:
    return str(s).strip().strip('"\'').lower()


class DetectionTask(Problem):
    """Level 1: is there an anomaly? Binary yes/no (§3.3)."""

    task_type = "detection"

    def __init__(self, fault, target=None, app_name=None, pid=None,
                 expected: Optional[str] = None) -> None:
        super().__init__(fault, target, app_name, pid)
        self.ans = expected if expected is not None else (
            "yes" if self.spec is not None else "no"
        )

    def task_instructions(self) -> str:
        return ('Detect whether the system currently has a fault. Submit '
                'exactly "yes" if a fault is present or "no" otherwise, '
                'via submit("yes"|"no").')

    def eval(self, soln, trace, duration, env=None) -> dict:
        res: dict[str, Any] = {"TTD": duration}
        res["success"] = _norm(soln) == _norm(self.ans)
        return res


class LocalizationTask(Problem):
    """Level 2: which service is at fault? Graded at top-1 and top-3."""

    task_type = "localization"

    def task_instructions(self) -> str:
        return ("Localize the faulty service. Submit a list of up to 3 "
                "candidate service names, most suspect first, via "
                'submit(["service-a", ...]).')

    def eval(self, soln, trace, duration, env=None) -> dict:
        res: dict[str, Any] = {"TTL": duration}
        if isinstance(soln, (list, tuple)):
            candidates = [_norm(x) for x in soln]
        else:
            candidates = [_norm(x) for x in str(soln).split(",")]
        truth = _norm(self.ans)
        res["success@1"] = bool(candidates) and candidates[0] == truth
        res["success@3"] = truth in candidates[:3]
        res["success"] = res["success@1"]
        return res


class AnalysisTask(Problem):
    """Level 3: root-cause analysis — two sub-answers (§3.3):
    the affected system level and the fault type."""

    task_type = "analysis"

    VALID_LEVELS = ("application", "virtualization", "network", "hardware")
    VALID_TYPES = ("misconfiguration", "operation_error", "code_bug",
                   "network_loss", "pod_failure", "resource_exhaustion")

    def task_instructions(self) -> str:
        return ("Determine the root cause. Submit a dict with two fields: "
                '{"system_level": one of ' + "/".join(self.VALID_LEVELS) +
                ', "fault_type": one of ' + "/".join(self.VALID_TYPES) +
                "} via submit({...}).")

    def eval(self, soln, trace, duration, env=None) -> dict:
        res: dict[str, Any] = {"TTA": duration}
        level_truth = _norm(self.spec.rca_system_level if self.spec else "")
        type_truth = _norm(self.spec.rca_fault_type if self.spec else "")
        got_level = got_type = ""
        if isinstance(soln, dict):
            got_level = _norm(soln.get("system_level", ""))
            got_type = _norm(soln.get("fault_type", ""))
        res["level_correct"] = got_level == level_truth
        res["type_correct"] = got_type == type_truth
        res["subtasks_correct"] = int(res["level_correct"]) + int(res["type_correct"])
        res["success"] = res["level_correct"] and res["type_correct"]
        return res


class MitigationTask(Problem):
    """Level 4: fix the fault.  Graded on the state of the whole system,
    not just the injected resource (§2.1)."""

    task_type = "mitigation"

    def task_instructions(self) -> str:
        return ("Mitigate the fault: use exec_shell (kubectl/helm) and the "
                "telemetry APIs to repair the system, then call submit() "
                "with no arguments. The whole system must be healthy.")

    def eval(self, soln, trace, duration, env=None) -> dict:
        res: dict[str, Any] = {"TTM": duration}
        if env is None:
            res["success"] = False
            res["reason"] = "no environment to check"
            return res
        healthy, reason = system_healthy(env)
        res["success"] = healthy
        res["reason"] = reason
        return res
