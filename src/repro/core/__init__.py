"""The paper's primary contribution: the Orchestrator and Agent-Cloud Interface.

* :class:`CloudEnvironment` — one deployed app + cluster + telemetry +
  workload, on a shared virtual clock.
* :class:`TaskActions` (ACI) — the documented action surface agents act
  through.  Actions are registered with the :func:`action` decorator,
  collected into an :class:`ActionRegistry` (per-task surfaces, e.g.
  mitigation-only actions), and return structured :class:`Observation`\\ s.
* :class:`Problem` and the four task interfaces (Detection / Localization /
  Analysis / Mitigation) — the ⟨T, C, S⟩ tuple of §2.1.
* :class:`Orchestrator` — session management, v2: ``create_session(problem,
  agent, seed=...)`` returns a :class:`SessionHandle` owning its own
  environment; ``await handle.run(max_steps)`` drives the loop.  The seed's
  ``init_problem`` → ``register_agent`` → ``start_problem`` flow remains as
  a back-compat shim.
* :func:`run_sessions` — the concurrent batch executor: fan independent
  :class:`SessionSpec`\\ s out under a semaphore with deterministic,
  spec-ordered results.
"""

from repro.core.env import (
    AppSpec,
    CloudEnvironment,
    EnvSnapshot,
    EnvSpec,
    FIDELITY_TIERS,
)
from repro.core.actions import ActionRegistry, ActionSpec, Observation, action
from repro.core.aci import TaskActions, extract_api_docs, registry_for
from repro.core.problem import (
    Problem,
    DetectionTask,
    LocalizationTask,
    AnalysisTask,
    MitigationTask,
)
from repro.core.session import Session, Step
from repro.core.orchestrator import (
    Orchestrator,
    SessionContext,
    SessionHandle,
    run_coroutine_sync,
)
from repro.core.batch import (
    GridCell,
    SessionOutcome,
    SessionSpec,
    run_grid,
    run_sessions,
    run_sessions_sync,
)
from repro.core.evaluator import Evaluator, system_healthy
from repro.core.judge import LlmJudge
from repro.core.lifecycle import IncidentLifecycle, LifecycleResult, StageResult
from repro.core.trajectory import load_session, save_all, save_session

__all__ = [
    "IncidentLifecycle",
    "LifecycleResult",
    "StageResult",
    "load_session",
    "save_all",
    "save_session",
    "AppSpec",
    "CloudEnvironment",
    "EnvSnapshot",
    "EnvSpec",
    "FIDELITY_TIERS",
    "ActionRegistry",
    "ActionSpec",
    "Observation",
    "action",
    "TaskActions",
    "extract_api_docs",
    "registry_for",
    "Problem",
    "DetectionTask",
    "LocalizationTask",
    "AnalysisTask",
    "MitigationTask",
    "Session",
    "Step",
    "Orchestrator",
    "SessionContext",
    "SessionHandle",
    "run_coroutine_sync",
    "GridCell",
    "SessionOutcome",
    "SessionSpec",
    "run_grid",
    "run_sessions",
    "run_sessions_sync",
    "Evaluator",
    "system_healthy",
    "LlmJudge",
]
