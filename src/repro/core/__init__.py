"""The paper's primary contribution: the Orchestrator and Agent-Cloud Interface.

* :class:`CloudEnvironment` — one deployed app + cluster + telemetry +
  workload, on a shared virtual clock.
* :class:`TaskActions` (ACI) — the concise, documented API surface agents
  act through (``get_logs``, ``get_metrics``, ``get_traces``,
  ``exec_shell``, ``submit``).
* :class:`Problem` and the four task interfaces (Detection / Localization /
  Analysis / Mitigation) — the ⟨T, C, S⟩ tuple of §2.1.
* :class:`Orchestrator` — session management: ``init_problem`` →
  ``register_agent`` → ``start_problem(max_steps)``; polls the agent's
  ``get_action``, executes actions, feeds back observations, and evaluates
  the final submission.
"""

from repro.core.env import CloudEnvironment
from repro.core.aci import TaskActions, extract_api_docs
from repro.core.problem import (
    Problem,
    DetectionTask,
    LocalizationTask,
    AnalysisTask,
    MitigationTask,
)
from repro.core.session import Session, Step
from repro.core.orchestrator import Orchestrator
from repro.core.evaluator import Evaluator, system_healthy
from repro.core.judge import LlmJudge
from repro.core.lifecycle import IncidentLifecycle, LifecycleResult, StageResult
from repro.core.trajectory import load_session, save_all, save_session

__all__ = [
    "IncidentLifecycle",
    "LifecycleResult",
    "StageResult",
    "load_session",
    "save_all",
    "save_session",
    "CloudEnvironment",
    "TaskActions",
    "extract_api_docs",
    "Problem",
    "DetectionTask",
    "LocalizationTask",
    "AnalysisTask",
    "MitigationTask",
    "Session",
    "Step",
    "Orchestrator",
    "Evaluator",
    "system_healthy",
    "LlmJudge",
]
