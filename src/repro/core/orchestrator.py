"""The Orchestrator (§2.2): sessions, the agent loop, and evaluation."""

from __future__ import annotations

import asyncio
import inspect
from typing import Any, Optional, Union

from repro.core.aci import SubmissionReceived, TaskActions, extract_api_docs
from repro.core.env import CloudEnvironment
from repro.core.evaluator import EvaluationResult, Evaluator
from repro.core.parser import ActionParseError, parse_action
from repro.core.problem import Problem
from repro.core.session import Session, Step


class Orchestrator:
    """Coordinates agent ↔ cloud interaction for one problem at a time.

    Usage (mirrors the paper's Example 2.3)::

        orch = Orchestrator()
        prob_desc, instructs, apis = orch.init_problem(problem)
        orch.register_agent(agent, name="myAgent")
        result = asyncio.run(orch.start_problem(max_steps=10))

    ``init_problem`` also accepts a problem id string, resolved through
    :mod:`repro.problems`.

    Parameters
    ----------
    seed:
        Seeds the problem's environment (and thus all derived randomness).
    step_env_seconds:
        Fallback virtual seconds per step when an agent reports no latency.
    """

    def __init__(self, seed: int = 0, step_env_seconds: float = 5.0) -> None:
        self.seed = seed
        self.step_env_seconds = step_env_seconds
        self.problem: Optional[Problem] = None
        self.env: Optional[CloudEnvironment] = None
        self.actions: Optional[TaskActions] = None
        self.agent: Any = None
        self.agent_name: str = "agent"
        self.session: Optional[Session] = None
        self.sessions: list[Session] = []

    # ------------------------------------------------------------------
    def init_problem(
        self, problem: Union[Problem, str]
    ) -> tuple[str, str, str]:
        """Set the problem up (deploy, warm up, inject) and return the
        context shared with the agent: (description, instructions, API docs)."""
        if isinstance(problem, str):
            from repro.problems import get_problem
            problem = get_problem(problem)
        self.problem = problem
        self.env = problem.create_environment(seed=self.seed)
        problem.start_workload(self.env)
        problem.inject_fault(self.env)
        self.actions = TaskActions(self.env)
        prob_desc = problem.problem_description(self.env)
        instructs = (
            "Interact step by step. Each response must be exactly one API "
            "call. Finish by calling submit(...). You have a limited number "
            "of steps."
        )
        apis = extract_api_docs()
        return prob_desc, instructs, apis

    def register_agent(self, agent: Any, name: str = "agent") -> None:
        """Register the agent; it must implement
        ``async def get_action(state: str) -> str`` (sync also accepted)."""
        if not hasattr(agent, "get_action"):
            raise TypeError("agent must implement get_action(state) -> str")
        self.agent = agent
        self.agent_name = name

    # ------------------------------------------------------------------
    async def start_problem(self, max_steps: int = 20) -> dict:
        """Run the session loop and return the evaluation results dict."""
        if self.problem is None or self.env is None or self.actions is None:
            raise RuntimeError("call init_problem() before start_problem()")
        if self.agent is None:
            raise RuntimeError("call register_agent() before start_problem()")

        env = self.env
        session = Session(
            pid=self.problem.pid,
            agent_name=self.agent_name,
            started_at=env.clock.now,
        )
        self.session = session
        self.sessions.append(session)

        state = "Session started. Take your first action."
        solution: Any = None
        for index in range(max_steps):
            raw = await self._ask_agent(state)
            in_tok, out_tok, latency = self._agent_stats()
            session.add_tokens(in_tok, out_tok)
            env.advance(max(latency, 0.0) or self.step_env_seconds)

            step = Step(
                index=index, time=env.clock.now, action_raw=raw,
                action_name="", action_args=(), observation="",
            )
            try:
                parsed = parse_action(raw)
                step.action_name = parsed.name
                step.action_args = parsed.args
                if parsed.name == "exec_shell" and parsed.args:
                    tokens = str(parsed.args[0]).split()
                    step.shell_command = tokens[0] if tokens else ""
                observation = self._execute(parsed)
                step.observation = observation
            except SubmissionReceived as sub:
                solution = sub.solution
                session.submitted = True
                session.solution = solution
                step.observation = "Solution submitted."
                session.add_step(step)
                break
            except ActionParseError as e:
                step.valid = False
                step.action_name = "invalid"
                step.observation = str(e)
            session.add_step(step)
            state = step.observation
        session.ended_at = env.clock.now

        evaluator = Evaluator(self.problem, env)
        result = evaluator.evaluate(session, solution)
        if not session.submitted:
            # No submission within the step budget is a failure for answer
            # tasks; mitigation is graded on the environment state anyway
            # but still requires the agent to have declared completion.
            result.success = False
            result.details["success"] = False
            result.details.setdefault("reason", "no submission within step limit")
        return self._result_dict(result)

    def run_problem(self, max_steps: int = 20) -> dict:
        """Synchronous convenience wrapper around :meth:`start_problem`."""
        return asyncio.run(self.start_problem(max_steps=max_steps))

    # ------------------------------------------------------------------
    async def _ask_agent(self, state: str) -> str:
        result = self.agent.get_action(state)
        if inspect.isawaitable(result):
            result = await result
        return str(result)

    def _agent_stats(self) -> tuple[int, int, float]:
        """Pull (input_tokens, output_tokens, latency_s) for the last call.

        Agents may expose ``consume_stats()``; others get defaults so any
        framework can be wrapped with a few lines (the paper's onboarding
        claim).
        """
        consume = getattr(self.agent, "consume_stats", None)
        if callable(consume):
            return consume()
        return 0, 0, self.step_env_seconds

    def _execute(self, parsed) -> str:
        method = getattr(self.actions, parsed.name)
        try:
            out = method(*parsed.args, **parsed.kwargs)
        except SubmissionReceived:
            raise
        except TypeError as e:
            return (f"Error: invalid arguments for {parsed.name}: {e}")
        except Exception as e:  # surface env errors as feedback, not crashes
            return f"Error: {e}"
        return str(out)

    def _result_dict(self, result: EvaluationResult) -> dict:
        out = {
            "pid": result.pid,
            "task_type": result.task_type,
            "agent": result.agent_name,
            "success": result.success,
            "duration_s": result.duration_s,
            "steps": result.steps,
            "input_tokens": result.input_tokens,
            "output_tokens": result.output_tokens,
        }
        out.update(result.details)
        return out
