"""The Orchestrator (§2.2): sessions, the agent loop, and evaluation.

v2 is session-centric: :meth:`Orchestrator.create_session` returns a
:class:`SessionHandle` that owns its environment, action registry, and
trajectory, so any number of sessions can run concurrently from one
Orchestrator (the batch executor in :mod:`repro.core.batch` fans them out).
The seed's ``init_problem`` → ``register_agent`` → ``start_problem`` flow
is kept as a thin back-compat shim over one implicit handle.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import inspect
from typing import Any, NamedTuple, Optional, Union

from repro.core.aci import SubmissionReceived, TaskActions, registry_for
from repro.core.actions import ActionRegistry, Observation
from repro.core.env import CloudEnvironment
from repro.core.evaluator import EvaluationResult, Evaluator
from repro.core.parser import ActionParseError, parse_action
from repro.core.problem import Problem
from repro.core.session import Session, Step


def run_coroutine_sync(coro) -> Any:
    """Run ``coro`` to completion whether or not a loop is already running.

    ``asyncio.run`` crashes inside a running event loop (notebooks, async
    drivers); in that case the coroutine runs on a fresh loop in a
    dedicated thread instead.
    """
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        return asyncio.run(coro)
    with concurrent.futures.ThreadPoolExecutor(max_workers=1) as pool:
        return pool.submit(asyncio.run, coro).result()


class SessionContext(NamedTuple):
    """The context ``C`` shared with the agent (§2.1): description,
    interaction instructions, and the auto-rendered API docs.

    A named tuple, so seed-style unpacking/indexing of the old
    ``(description, instructions, api_docs)`` return value keeps working.
    """

    description: str
    instructions: str
    api_docs: str


_INSTRUCTIONS = (
    "Interact step by step. Each response must be exactly one API "
    "call. Finish by calling submit(...). You have a limited number "
    "of steps."
)


class SessionHandle:
    """One problem instance: environment, action surface, agent, trajectory.

    Handles are independent — two handles never share environment or
    session state, which is what makes concurrent batch execution safe.
    Create them via :meth:`Orchestrator.create_session`.
    """

    def __init__(self, problem: Problem, *, seed: int = 0,
                 step_env_seconds: float = 5.0,
                 agent: Any = None, agent_name: str = "agent",
                 env: Optional[CloudEnvironment] = None) -> None:
        self.problem = problem
        self.seed = seed
        self.step_env_seconds = step_env_seconds
        if env is None:
            self.env = problem.create_environment(seed=seed)
            problem.start_workload(self.env)
            problem.inject_fault(self.env)
        else:
            # prepared-environment path: ``env`` was already deployed,
            # warmed up and fault-injected (an EnvSnapshot fork) — adopt
            # it instead of paying the setup again
            self.env = env
        self.actions = TaskActions(self.env)
        self.registry: ActionRegistry = registry_for(problem.task_type)
        self.context = SessionContext(
            description=problem.problem_description(self.env),
            instructions=_INSTRUCTIONS,
            api_docs=self.registry.render_docs(),
        )
        self.agent: Any = None
        self.agent_name = agent_name
        if agent is not None:
            self.bind_agent(agent, name=agent_name)
        self.session: Optional[Session] = None
        self.result: Optional[dict] = None

    # ------------------------------------------------------------------
    def bind_agent(self, agent: Any, name: str = "agent") -> "SessionHandle":
        """Attach the agent; it must implement
        ``async def get_action(state: str) -> str`` (sync also accepted)."""
        if not hasattr(agent, "get_action"):
            raise TypeError("agent must implement get_action(state) -> str")
        self.agent = agent
        self.agent_name = name
        return self

    def close(self) -> None:
        """Release the session's environment's on-disk footprint.

        The in-memory trajectory (:attr:`session`) and :attr:`result` stay
        available, but exported telemetry *files* (the paths recorded in
        step ``artifacts``) live under the environment's temp export root
        and are removed with it — read them before closing, or pass an
        ``export_root`` you own to keep them."""
        self.env.close()

    # ------------------------------------------------------------------
    async def run(self, max_steps: int = 20) -> dict:
        """Drive the agent loop to completion and return the evaluation."""
        if self.agent is None:
            raise RuntimeError("bind an agent before running the session")

        env = self.env
        session = Session(
            pid=self.problem.pid,
            agent_name=self.agent_name,
            started_at=env.clock.now,
        )
        self.session = session

        state = "Session started. Take your first action."
        solution: Any = None
        for index in range(max_steps):
            raw = await self._ask_agent(state)
            in_tok, out_tok, latency = self._agent_stats()
            session.add_tokens(in_tok, out_tok)
            env.advance(max(latency, 0.0) or self.step_env_seconds)

            step = Step(
                index=index, time=env.clock.now, action_raw=raw,
                action_name="", action_args=(), observation="",
            )
            try:
                parsed = parse_action(raw, self.registry.names())
                step.action_name = parsed.name
                step.action_args = parsed.args
                if parsed.name == "exec_shell":
                    command = parsed.args[0] if parsed.args \
                        else parsed.kwargs.get("command", "")
                    tokens = str(command).split()
                    step.shell_command = tokens[0] if tokens else ""
                observation = self._execute(parsed)
                step.observation = str(observation)
                if isinstance(observation, Observation):
                    step.payload = observation.payload
                    step.artifacts = observation.artifacts
            except SubmissionReceived as sub:
                solution = sub.solution
                session.submitted = True
                session.solution = solution
                step.observation = "Solution submitted."
                session.add_step(step)
                break
            except ActionParseError as e:
                step.valid = False
                step.action_name = "invalid"
                step.observation = str(e)
            session.add_step(step)
            state = step.observation
        session.ended_at = env.clock.now

        evaluator = Evaluator(self.problem, env)
        result = evaluator.evaluate(session, solution)
        if not session.submitted:
            # No submission within the step budget is a failure for answer
            # tasks; mitigation is graded on the environment state anyway
            # but still requires the agent to have declared completion.
            result.success = False
            result.details["success"] = False
            result.details.setdefault("reason", "no submission within step limit")
        self.result = self._result_dict(result)
        return self.result

    def run_sync(self, max_steps: int = 20) -> dict:
        """Synchronous convenience wrapper around :meth:`run` (loop-safe)."""
        return run_coroutine_sync(self.run(max_steps=max_steps))

    # ------------------------------------------------------------------
    async def _ask_agent(self, state: str) -> str:
        result = self.agent.get_action(state)
        if inspect.isawaitable(result):
            result = await result
        return str(result)

    def _agent_stats(self) -> tuple[int, int, float]:
        """Pull (input_tokens, output_tokens, latency_s) for the last call.

        Agents may expose ``consume_stats()``; others get defaults so any
        framework can be wrapped with a few lines (the paper's onboarding
        claim).
        """
        consume = getattr(self.agent, "consume_stats", None)
        if callable(consume):
            return consume()
        return 0, 0, self.step_env_seconds

    def _execute(self, parsed) -> Any:
        # A TypeError raised *inside* an action body must not be confused
        # with the agent passing bad arguments: bind against the signature
        # first, and only binding failures get the invalid-arguments hint.
        bind_error = self.registry.bind_errors(
            parsed.name, parsed.args, parsed.kwargs)
        if bind_error is not None:
            return bind_error
        try:
            return self.registry.execute(
                self.actions, parsed.name, *parsed.args, **parsed.kwargs)
        except SubmissionReceived:
            raise
        except Exception as e:  # surface env errors as feedback, not crashes
            return f"Error: {e}"

    def _result_dict(self, result: EvaluationResult) -> dict:
        out = {
            "pid": result.pid,
            "task_type": result.task_type,
            "agent": result.agent_name,
            "success": result.success,
            "duration_s": result.duration_s,
            "steps": result.steps,
            "input_tokens": result.input_tokens,
            "output_tokens": result.output_tokens,
        }
        out.update(result.details)
        return out


class Orchestrator:
    """Coordinates agent ↔ cloud interaction (§2.2).

    v2 usage — any number of concurrent sessions::

        orch = Orchestrator(seed=0)
        handle = orch.create_session(problem, agent, seed=7)
        result = await handle.run(max_steps=10)      # or handle.run_sync()

    Seed usage (kept as a back-compat shim over one implicit handle)::

        orch = Orchestrator()
        prob_desc, instructs, apis = orch.init_problem(problem)
        orch.register_agent(agent, name="myAgent")
        result = asyncio.run(orch.start_problem(max_steps=10))

    ``init_problem``/``create_session`` also accept a problem id string,
    resolved through :mod:`repro.problems`.

    Parameters
    ----------
    seed:
        Default seed for sessions that don't pass their own.
    step_env_seconds:
        Fallback virtual seconds per step when an agent reports no latency.
    """

    def __init__(self, seed: int = 0, step_env_seconds: float = 5.0) -> None:
        self.seed = seed
        self.step_env_seconds = step_env_seconds
        self.handles: list[SessionHandle] = []
        self.sessions: list[Session] = []
        # back-compat shim state (the seed's one-problem-at-a-time flow)
        self._shim_handle: Optional[SessionHandle] = None
        self._shim_agent: Any = None
        self._shim_agent_name: str = "agent"

    # ------------------------------------------------------------------
    # v2 API
    # ------------------------------------------------------------------
    @staticmethod
    def _resolve_problem(problem: Union[Problem, str]) -> Problem:
        if isinstance(problem, str):
            from repro.problems import get_problem
            return get_problem(problem)
        return problem

    def create_session(self, problem: Union[Problem, str],
                       agent: Any = None, *,
                       seed: Optional[int] = None,
                       agent_name: str = "agent") -> SessionHandle:
        """Set a problem up (deploy, warm up, inject) in its own
        environment and return the session handle that owns it."""
        handle = SessionHandle(
            self._resolve_problem(problem),
            seed=self.seed if seed is None else seed,
            step_env_seconds=self.step_env_seconds,
            agent=agent, agent_name=agent_name,
        )
        self.handles.append(handle)
        return handle

    def release(self, handle: SessionHandle) -> None:
        """Stop tracking a handle and reclaim its environment.

        Handles are tracked in :attr:`handles` for the orchestrator's
        lifetime otherwise — call this (keeping the handle's ``session``
        if you need the trajectory) when running many sessions through
        one long-lived orchestrator.  Closes the handle's environment, so
        its temp telemetry-export directory is removed rather than leaked
        one-per-case across a suite."""
        if handle in self.handles:
            self.handles.remove(handle)
        if handle is self._shim_handle:
            self._shim_handle = None
        handle.close()

    # ------------------------------------------------------------------
    # seed API (back-compat shim)
    # ------------------------------------------------------------------
    def init_problem(self, problem: Union[Problem, str]) -> SessionContext:
        """Set the problem up and return the context shared with the agent.

        .. deprecated:: 2.0
            Shim over :meth:`create_session`; the returned
            :class:`SessionContext` still unpacks as the seed's
            ``(description, instructions, api_docs)`` tuple.
        """
        replaced = self._shim_handle
        self._shim_handle = self.create_session(problem)
        if replaced is not None and replaced in self.handles:
            # the seed flow held one problem at a time; don't pin the
            # replaced handle's environment on the orchestrator (and don't
            # leak its export dir)
            self.handles.remove(replaced)
            replaced.close()
        if self._shim_agent is not None:
            self._shim_handle.bind_agent(self._shim_agent,
                                         self._shim_agent_name)
        return self._shim_handle.context

    def register_agent(self, agent: Any, name: str = "agent") -> None:
        """Register the agent for the shim flow (see :meth:`init_problem`)."""
        if not hasattr(agent, "get_action"):
            raise TypeError("agent must implement get_action(state) -> str")
        self._shim_agent = agent
        self._shim_agent_name = name
        if self._shim_handle is not None:
            self._shim_handle.bind_agent(agent, name)

    async def start_problem(self, max_steps: int = 20) -> dict:
        """Run the shim session loop and return the evaluation results dict."""
        handle = self._shim_handle
        if handle is None:
            raise RuntimeError("call init_problem() before start_problem()")
        if handle.agent is None:
            raise RuntimeError("call register_agent() before start_problem()")
        try:
            return await handle.run(max_steps=max_steps)
        finally:
            # v1 exposed the session from loop start; keep partial
            # trajectories reachable through orch.sessions on error too
            if handle.session is not None \
                    and handle.session not in self.sessions:
                self.sessions.append(handle.session)

    def run_problem(self, max_steps: int = 20) -> dict:
        """Synchronous wrapper around :meth:`start_problem`.

        Safe to call from inside a running event loop (notebooks, async
        drivers): the session then runs on a fresh loop in a worker thread.
        """
        return run_coroutine_sync(self.start_problem(max_steps=max_steps))

    # -- shim attribute views (seed code reads these off the instance) ---
    @property
    def problem(self) -> Optional[Problem]:
        return self._shim_handle.problem if self._shim_handle else None

    @property
    def env(self) -> Optional[CloudEnvironment]:
        return self._shim_handle.env if self._shim_handle else None

    @property
    def actions(self) -> Optional[TaskActions]:
        return self._shim_handle.actions if self._shim_handle else None

    @property
    def agent(self) -> Any:
        if self._shim_handle is not None and self._shim_handle.agent is not None:
            return self._shim_handle.agent
        return self._shim_agent

    @property
    def agent_name(self) -> str:
        if self._shim_handle is not None and self._shim_handle.agent is not None:
            return self._shim_handle.agent_name
        return self._shim_agent_name

    @property
    def session(self) -> Optional[Session]:
        return self._shim_handle.session if self._shim_handle else None
