"""The Agent-Cloud Interface (§2.2.1): the actions agents can take.

Each :func:`~repro.core.actions.action`-decorated method on
:class:`TaskActions` is one valid agent action.  On session creation the
Orchestrator builds an :class:`~repro.core.actions.ActionRegistry` over this
class (narrowed to the problem's task type) and auto-renders the agent's API
documentation from it, exactly as Example 2.2 of the paper describes.

Every action returns a structured :class:`~repro.core.actions.Observation`:
the agent sees ``observation.text``; benchmark analytics and judges get the
machine-readable ``payload`` and the exported ``artifacts`` paths.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.env import CloudEnvironment

from repro.core.actions import ActionRegistry, Observation, action
from repro.core.shell import ShellExecutor


class SubmissionReceived(Exception):
    """Raised internally when the agent calls ``submit`` — ends the session."""

    def __init__(self, solution: object) -> None:
        self.solution = solution
        super().__init__(f"solution submitted: {solution!r}")


class TaskActions:
    """Concrete ACI over one :class:`CloudEnvironment`.

    All telemetry getters save data under the environment's export root and
    return both the path and a compact, agent-readable rendering — the
    high-quality feedback §2.2.1 calls for.
    """

    def __init__(self, env: "CloudEnvironment") -> None:
        self.env = env
        self.shell = ShellExecutor(env)

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    @action
    def get_logs(self, namespace: str, service: str,
                 tail: int = 20) -> Observation:
        """
        Collects recent application logs for a service (via the log pipeline).

        Args:
            namespace (str): The K8S namespace of the application.
            service (str): The service whose logs to fetch, or "all" for an
                error summary across every service.
            tail (int): Number of most recent lines to return.
        Returns:
            str: Path where logs are saved, plus the log lines.
        """
        ns = namespace or self.env.namespace
        if ns not in self.env.cluster.namespaces:
            return Observation.error(
                f"Error: Your service/namespace does not exist: {ns}",
                namespace=ns)
        path = self.env.exporter.export_logs(ns)
        if service in ("all", "*", ""):
            counts = self.env.collector.logs.error_counts(ns)
            if not counts:
                return Observation(
                    f"Saved logs to {path}. No ERROR-level log lines "
                    f"found in namespace {ns}.",
                    artifacts=(str(path),),
                    payload={"namespace": ns, "error_counts": {}})
            summary = "\n".join(
                f"  {svc}: {n} ERROR lines"
                for svc, n in sorted(counts.items(), key=lambda kv: -kv[1])
            )
            return Observation(
                f"Saved logs to {path}. ERROR lines per service:\n{summary}",
                artifacts=(str(path),),
                payload={"namespace": ns, "error_counts": dict(counts)})
        app = self.env.app_for(ns, fallback=self.env.app)
        known = self.env.collector.logs.services_seen(ns) | set(app.services)
        if service not in known:
            return Observation.error(
                f"Error: Your service/namespace does not exist: {service}",
                namespace=ns, service=service)
        text = self.env.collector.logs.tail_service(ns, service, tail)
        if not text:
            return Observation(
                f"Saved logs to {path}. Service {service} has produced "
                f"no log lines yet.",
                artifacts=(str(path),),
                payload={"namespace": ns, "service": service, "lines": []})
        return Observation(
            f"Saved logs to {path}. Last lines of {service}:\n{text}",
            artifacts=(str(path),),
            payload={"namespace": ns, "service": service,
                     "lines": text.splitlines()})

    @action
    def get_metrics(self, namespace: str, duration: int = 5) -> Observation:
        """
        Collects service metrics (CPU, memory, request/error rates) from the
        monitoring stack for the last `duration` minutes.

        Args:
            namespace (str): The K8S namespace, or "all" for a snapshot
                spanning every hosted application's namespace.
            duration (int): Minutes of history to export.
        Returns:
            str: Path where metrics are saved, plus a per-service snapshot.
        """
        spanning = namespace in ("all", "*")
        ns = namespace or self.env.namespace
        if not spanning and ns not in self.env.cluster.namespaces:
            return Observation.error(
                f"Error: Your service/namespace does not exist: {ns}",
                namespace=ns)
        since = max(self.env.clock.now - duration * 60.0, 0.0)
        path = self.env.exporter.export_metrics(since=since)
        collector = self.env.collector
        store = collector.metrics
        lines = []
        err = store.snapshot_latest("error_rate")
        cpu = store.snapshot_latest("cpu_usage")
        rate = store.snapshot_latest("request_rate")
        snapshot = {}
        for svc in sorted(set(err) | set(cpu)):
            # metric keys are namespace-qualified for non-primary apps;
            # a scoped view keeps only the requested namespace's services
            # (shown bare), a spanning view keeps the qualified names
            svc_ns, bare = collector.split(svc)
            if not spanning and svc_ns != ns:
                continue
            shown = svc if spanning else bare
            snapshot[shown] = {
                "cpu_m": cpu.get(svc, 0),
                "request_rate": rate.get(svc, 0),
                "error_rate": err.get(svc, 0),
            }
            lines.append(
                f"  {shown}: cpu={cpu.get(svc, 0):.0f}m "
                f"req_rate={rate.get(svc, 0):.1f}/s "
                f"err_rate={err.get(svc, 0):.2f}/s"
            )
        body = "\n".join(lines) if lines else "  (no samples yet)"
        return Observation(
            f"Saved metrics to {path}. Latest snapshot:\n{body}",
            artifacts=(str(path),),
            payload={"namespace": ns, "snapshot": snapshot})

    @action
    def get_traces(self, namespace: str, duration: int = 5) -> Observation:
        """
        Collects trace data of the services from the tracing backend.

        Args:
            namespace (str): The K8S namespace.
            duration (int): Minutes of traces to collect.
        Returns:
            str: Path to the saved traces, plus an error-span summary.
        """
        ns = namespace or self.env.namespace
        if ns not in self.env.cluster.namespaces:
            return Observation.error(
                f"Error: Your service/namespace does not exist: {ns}",
                namespace=ns)
        since = max(self.env.clock.now - duration * 60.0, 0.0)
        path = self.env.exporter.export_traces(since=since)
        rates = self.env.collector.traces.error_rate_by_service(since=since)
        errored = {svc: r for svc, r in rates.items() if r > 0}
        if not errored:
            return Observation(
                f"Saved traces to {path}. No error spans in the window.",
                artifacts=(str(path),),
                payload={"namespace": ns, "error_rates": {}})
        lines = "\n".join(
            f"  {svc}: {r * 100:.0f}% of spans errored"
            for svc, r in sorted(errored.items(), key=lambda kv: -kv[1])
        )
        return Observation(
            f"Saved traces to {path}. Services with error spans:\n{lines}",
            artifacts=(str(path),),
            payload={"namespace": ns, "error_rates": errored})

    # ------------------------------------------------------------------
    # acting on the environment
    # ------------------------------------------------------------------
    @action
    def exec_shell(self, command: str) -> Observation:
        """
        Executes a shell command after applying security policy filters.
        kubectl and helm are available; destructive commands are blocked.

        Args:
            command (str): The command, e.g. "kubectl get pods -n <ns>".
        Returns:
            str: Command output or error text.
        """
        out = self.shell.run(command)
        return Observation.of(out)

    @action(task_types=("mitigation",))
    def restart_service(self, service: str) -> Observation:
        """
        Restarts one service's deployment (rollout restart) — a common
        first-line mitigation. Only available on mitigation tasks; on other
        tasks use the telemetry APIs and submit your answer.

        Args:
            service (str): The deployment/service name to restart.
        Returns:
            str: The rollout output.
        """
        out = self.shell.run(
            f"kubectl rollout restart deployment {service} "
            f"-n {self.env.namespace}")
        return Observation.of(out)

    @action
    def submit(self, solution: object = None) -> Observation:
        """
        Submits the final solution for the current task and ends the session.
        Detection: "yes"/"no". Localization: service name(s), most suspect
        first. Analysis: {"system_level": ..., "fault_type": ...}.
        Mitigation: call submit() after your fix; the environment itself
        is checked.

        Args:
            solution: The task-specific answer (may be omitted for mitigation).
        Returns:
            str: (never returns; ends the session)
        """
        raise SubmissionReceived(solution)


#: the registry over the default ACI (all tasks); sessions narrow it
DEFAULT_REGISTRY = ActionRegistry.from_class(TaskActions)


def registry_for(task_type: str = "",
                 actions_cls: type = TaskActions) -> ActionRegistry:
    """The action surface for one task type (mitigation sees extra actions)."""
    if actions_cls is TaskActions:
        return DEFAULT_REGISTRY.for_task(task_type)
    return ActionRegistry.from_class(actions_cls, task_type=task_type)


def extract_api_docs(actions_cls: type = TaskActions,
                     task_type: str = "") -> str:
    """Build the API documentation block shared with the agent as context.

    .. deprecated:: 2.0
        Thin wrapper kept for the seed API; docs are now auto-rendered from
        the action registry — use ``registry_for(task).render_docs()``.
    """
    return registry_for(task_type, actions_cls).render_docs()
