"""The Agent-Cloud Interface (§2.2.1): the actions agents can take.

Each public method on :class:`TaskActions` is one valid agent action.  On
problem initialization the Orchestrator extracts these docstrings and hands
them to the agent as its API documentation (`extract_api_docs`), exactly as
Example 2.2 of the paper describes.
"""

from __future__ import annotations

import inspect
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.env import CloudEnvironment

from repro.core.shell import ShellExecutor


class SubmissionReceived(Exception):
    """Raised internally when the agent calls ``submit`` — ends the session."""

    def __init__(self, solution: object) -> None:
        self.solution = solution
        super().__init__(f"solution submitted: {solution!r}")


class TaskActions:
    """Concrete ACI over one :class:`CloudEnvironment`.

    All telemetry getters save data under the environment's export root and
    return both the path and a compact, agent-readable rendering — the
    high-quality feedback §2.2.1 calls for.
    """

    def __init__(self, env: "CloudEnvironment") -> None:
        self.env = env
        self.shell = ShellExecutor(env)

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def get_logs(self, namespace: str, service: str,
                 tail: int = 20) -> str:
        """
        Collects recent application logs for a service (via the log pipeline).

        Args:
            namespace (str): The K8S namespace of the application.
            service (str): The service whose logs to fetch, or "all" for an
                error summary across every service.
            tail (int): Number of most recent lines to return.
        Returns:
            str: Path where logs are saved, plus the log lines.
        """
        ns = namespace or self.env.namespace
        if ns not in self.env.cluster.namespaces:
            return f"Error: Your service/namespace does not exist: {ns}"
        path = self.env.exporter.export_logs(ns)
        if service in ("all", "*", ""):
            counts = self.env.collector.logs.error_counts(ns)
            if not counts:
                return (f"Saved logs to {path}. No ERROR-level log lines "
                        f"found in namespace {ns}.")
            summary = "\n".join(
                f"  {svc}: {n} ERROR lines"
                for svc, n in sorted(counts.items(), key=lambda kv: -kv[1])
            )
            return f"Saved logs to {path}. ERROR lines per service:\n{summary}"
        known = self.env.collector.logs.services_seen(ns) | set(self.env.app.services)
        if service not in known:
            return f"Error: Your service/namespace does not exist: {service}"
        text = self.env.collector.logs.tail_service(ns, service, tail)
        if not text:
            return (f"Saved logs to {path}. Service {service} has produced "
                    f"no log lines yet.")
        return f"Saved logs to {path}. Last lines of {service}:\n{text}"

    def get_metrics(self, namespace: str, duration: int = 5) -> str:
        """
        Collects service metrics (CPU, memory, request/error rates) from the
        monitoring stack for the last `duration` minutes.

        Args:
            namespace (str): The K8S namespace.
            duration (int): Minutes of history to export.
        Returns:
            str: Path where metrics are saved, plus a per-service snapshot.
        """
        ns = namespace or self.env.namespace
        if ns not in self.env.cluster.namespaces:
            return f"Error: Your service/namespace does not exist: {ns}"
        since = max(self.env.clock.now - duration * 60.0, 0.0)
        path = self.env.exporter.export_metrics(since=since)
        store = self.env.collector.metrics
        lines = []
        err = store.snapshot_latest("error_rate")
        cpu = store.snapshot_latest("cpu_usage")
        rate = store.snapshot_latest("request_rate")
        for svc in sorted(set(err) | set(cpu)):
            lines.append(
                f"  {svc}: cpu={cpu.get(svc, 0):.0f}m "
                f"req_rate={rate.get(svc, 0):.1f}/s "
                f"err_rate={err.get(svc, 0):.2f}/s"
            )
        body = "\n".join(lines) if lines else "  (no samples yet)"
        return f"Saved metrics to {path}. Latest snapshot:\n{body}"

    def get_traces(self, namespace: str, duration: int = 5) -> str:
        """
        Collects trace data of the services from the tracing backend.

        Args:
            namespace (str): The K8S namespace.
            duration (int): Minutes of traces to collect.
        Returns:
            str: Path to the saved traces, plus an error-span summary.
        """
        ns = namespace or self.env.namespace
        if ns not in self.env.cluster.namespaces:
            return f"Error: Your service/namespace does not exist: {ns}"
        since = max(self.env.clock.now - duration * 60.0, 0.0)
        path = self.env.exporter.export_traces(since=since)
        rates = self.env.collector.traces.error_rate_by_service(since=since)
        errored = {svc: r for svc, r in rates.items() if r > 0}
        if not errored:
            return f"Saved traces to {path}. No error spans in the window."
        lines = "\n".join(
            f"  {svc}: {r * 100:.0f}% of spans errored"
            for svc, r in sorted(errored.items(), key=lambda kv: -kv[1])
        )
        return f"Saved traces to {path}. Services with error spans:\n{lines}"

    # ------------------------------------------------------------------
    # acting on the environment
    # ------------------------------------------------------------------
    def exec_shell(self, command: str) -> str:
        """
        Executes a shell command after applying security policy filters.
        kubectl and helm are available; destructive commands are blocked.

        Args:
            command (str): The command, e.g. "kubectl get pods -n <ns>".
        Returns:
            str: Command output or error text.
        """
        return self.shell.run(command)

    def submit(self, solution: object = None) -> str:
        """
        Submits the final solution for the current task and ends the session.
        Detection: "yes"/"no". Localization: service name(s), most suspect
        first. Analysis: {"system_level": ..., "fault_type": ...}.
        Mitigation: call submit() after your fix; the environment itself
        is checked.

        Args:
            solution: The task-specific answer (may be omitted for mitigation).
        Returns:
            str: (never returns; ends the session)
        """
        raise SubmissionReceived(solution)


def extract_api_docs(actions_cls: type = TaskActions,
                     task_type: str = "") -> str:
    """Build the API documentation block shared with the agent as context.

    Mirrors the paper's behaviour: "the Orchestrator automatically extracts
    documentation from these APIs to provide as context C to the agent."
    """
    blocks = []
    for name, member in inspect.getmembers(actions_cls, inspect.isfunction):
        if name.startswith("_"):
            continue
        sig = inspect.signature(member)
        params = [p for p in sig.parameters.values() if p.name != "self"]
        rendered = ", ".join(str(p) for p in params)
        doc = inspect.getdoc(member) or ""
        blocks.append(f"{name}({rendered})\n{doc}")
    return "\n\n".join(blocks)
