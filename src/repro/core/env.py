"""One problem's operational environment: app + cluster + telemetry + load.

The environment is built around a discrete-event kernel: one
:class:`~repro.simcore.events.EventQueue` on the shared
:class:`~repro.simcore.clock.SimClock` drives workload arrivals, telemetry
scrapes, periodic controller resync and any scheduled fault timelines.
``advance(s)`` runs the queue to ``now + s``, so virtual time jumps from
event to event instead of being ticked through.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Type

from repro.apps.base import App
from repro.kubesim import Cluster, Helm, Kubectl
from repro.simcore import EventQueue, SimClock
from repro.telemetry import TelemetryCollector, TelemetryExporter
from repro.workload import ConstantRate, RatePolicy, WorkloadDriver

#: request-execution fidelity tiers (see DESIGN.md): ``per_request``
#: walks the call graph once per request (bit-identical to the seed,
#: the benchmark default); ``aggregate`` samples batched outcomes from
#: compiled path profiles (statistically equivalent, built for
#: "millions of users" rates).  The driver's mode tuple is the single
#: source of truth; this is its environment-level name.
FIDELITY_TIERS = WorkloadDriver.MODES


@dataclass(frozen=True)
class EnvSpec:
    """Declarative environment configuration — the knobs a problem (or a
    scaling experiment) turns without touching environment wiring.

    ``fidelity`` selects the execution tier; everything else mirrors the
    corresponding :class:`CloudEnvironment` constructor parameter.
    """

    seed: int = 0
    workload_rate: float = 60.0
    policy: Optional[RatePolicy] = None
    fidelity: str = "per_request"
    resync_interval: float = 30.0
    export_root: Optional[str | Path] = None

    def __post_init__(self) -> None:
        if self.fidelity not in FIDELITY_TIERS:
            raise ValueError(
                f"fidelity must be one of {FIDELITY_TIERS}, "
                f"got {self.fidelity!r}")


class CloudEnvironment:
    """Deploys an application and wires every subsystem to one virtual clock.

    This is the ``E`` part of the problem context ``C = ⟨E, I⟩`` — the
    service, fault and workload conditions the problem occurs under; it is
    *not* shared with the agent (the agent only sees it through the ACI).

    Parameters
    ----------
    resync_interval:
        Period (virtual seconds) of the controller-resync event that
        re-runs the cluster's reconciling controllers, like the real
        controller manager's sync loop.  ``0`` disables it.  On a
        converged cluster a resync is a pure no-op (no RNG draws, no
        events recorded), so it never perturbs determinism.
    """

    def __init__(
        self,
        app_cls: Type[App],
        seed: int = 0,
        workload_rate: float = 60.0,
        policy: Optional[RatePolicy] = None,
        export_root: Optional[str | Path] = None,
        resync_interval: float = 30.0,
        fidelity: str = "per_request",
    ) -> None:
        if fidelity not in FIDELITY_TIERS:
            raise ValueError(
                f"fidelity must be one of {FIDELITY_TIERS}, got {fidelity!r}")
        self.seed = seed
        self.fidelity = fidelity
        self.clock = SimClock()
        self.queue = EventQueue(self.clock)
        self.cluster = Cluster(clock=self.clock, seed=seed)
        self.collector = TelemetryCollector(self.clock, seed=seed)
        self.helm = Helm(self.cluster)
        self.app: App = app_cls()
        self.runtime = self.app.deploy(
            self.cluster, self.collector, helm=self.helm, seed=seed
        )
        self.driver = WorkloadDriver(
            self.runtime,
            self.app.workload_mix(),
            policy or ConstantRate(workload_rate),
            seed=seed,
            queue=self.queue,
            mode=fidelity,
        )
        self.kubectl = Kubectl(
            self.cluster,
            log_source=self.collector.kubectl_log_source,
            exec_handler=self.app.exec_handler,
            metrics_source=self.collector.kubectl_metrics_source(self.cluster),
        )
        self._owns_export_root = export_root is None
        root = Path(export_root) if export_root else Path(tempfile.mkdtemp(
            prefix=f"aiopslab-{self.app.name}-"))
        self.export_root = root
        self.exporter = TelemetryExporter(self.collector, root)
        self._resync = self.queue.schedule_every(
            resync_interval, self.cluster.resync, label="controller.resync",
            passive=True,  # a converged-cluster resync can't affect workload
        ) if resync_interval > 0 else None
        self.closed = False

    @classmethod
    def from_spec(cls, app_cls: Type[App], spec: EnvSpec) -> "CloudEnvironment":
        """Build an environment from a declarative :class:`EnvSpec`."""
        return cls(
            app_cls,
            seed=spec.seed,
            workload_rate=spec.workload_rate,
            policy=spec.policy,
            export_root=spec.export_root,
            resync_interval=spec.resync_interval,
            fidelity=spec.fidelity,
        )

    @property
    def namespace(self) -> str:
        return self.app.namespace

    def advance(self, seconds: float) -> None:
        """Let the environment live for ``seconds`` of virtual time: the
        workload, scrapes, controller resync and any scheduled fault
        timeline all fire as events on the queue."""
        self.driver.run_events(seconds)

    def probe_error_rate(self, seconds: float = 10.0) -> float:
        """Run load for a window and return the fraction of failed requests."""
        before_req = self.driver.stats.requests
        before_err = self.driver.stats.errors
        self.advance(seconds)
        n = self.driver.stats.requests - before_req
        e = self.driver.stats.errors - before_err
        return e / n if n else 0.0

    def close(self) -> None:
        """Release the environment's on-disk footprint.

        Cancels the recurring resync event and removes the telemetry
        export directory *if this environment created it* (a caller-
        provided ``export_root`` is the caller's to manage).  Idempotent;
        the in-memory simulation stays usable for post-mortem inspection.
        """
        if self.closed:
            return
        self.closed = True
        if self._resync is not None:
            self._resync.cancel()
        if self._owns_export_root:
            shutil.rmtree(self.export_root, ignore_errors=True)
