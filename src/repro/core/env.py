"""One problem's operational environment: app(s) + cluster + telemetry + load.

The environment is built around a discrete-event kernel: one
:class:`~repro.simcore.events.EventQueue` on the shared
:class:`~repro.simcore.clock.SimClock` drives workload arrivals, telemetry
scrapes, periodic controller resync and any scheduled fault timelines.
``advance(s)`` runs the queue to ``now + s``, so virtual time jumps from
event to event instead of being ticked through.

One environment may host **several applications** — each in its own
namespace on the shared cluster, each with its own
:class:`~repro.workload.WorkloadDriver` interleaving arrivals on the one
queue::

    env = CloudEnvironment([
        AppSpec(HotelReservation, workload_rate=60.0),
        AppSpec(SocialNetwork, policy=BurstRate(base=40.0)),
    ], seed=7)

Everything shares one clock, queue and telemetry collector, which is what
makes *cross-app* behavior expressible: a metric watch on app A's
telemetry can fire a fault into app B, a load storm on one app is visible
to triggers watching the other, and kubectl spans both namespaces.  The
single-app constructor (``CloudEnvironment(HotelReservation, ...)``)
remains a thin wrapper over a one-element spec list and is bit-identical
to the historical single-app environment.
"""

from __future__ import annotations

import pickle
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Sequence, Type, Union

from repro.apps.base import App
from repro.kubesim import Cluster, Helm, Kubectl
from repro.kubesim.controllers import HorizontalAutoscaler, HpaPolicy
from repro.kubesim.resources import NodeSpec, ResourcePlane
from repro.simcore import EventQueue, SimClock
from repro.telemetry import TelemetryCollector, TelemetryExporter
from repro.workload import ConstantRate, RatePolicy, WorkloadDriver

#: request-execution fidelity tiers (see docs/design/fidelity.md):
#: ``per_request`` walks the call graph once per request (bit-identical
#: to the reference implementation, the benchmark default);
#: ``aggregate`` samples batched outcomes from compiled path profiles
#: (statistically equivalent, built for "millions of users" rates).  The
#: driver's mode tuple is the single source of truth; this is its
#: environment-level name.
FIDELITY_TIERS = WorkloadDriver.MODES


@dataclass(frozen=True)
class AppSpec:
    """One application hosted by a :class:`CloudEnvironment`.

    ``policy`` wins over ``workload_rate`` when both are given (the rate
    is only used to build the default :class:`ConstantRate`); ``fidelity``
    overrides the environment-level tier for this app's driver — e.g. an
    aggregate-tier load-generator neighbor next to a per-request app under
    test.
    """

    app_cls: Type[App]
    policy: Optional[RatePolicy] = None
    workload_rate: float = 60.0
    fidelity: Optional[str] = None

    def __post_init__(self) -> None:
        if self.fidelity is not None and self.fidelity not in FIDELITY_TIERS:
            raise ValueError(
                f"fidelity must be one of {FIDELITY_TIERS}, "
                f"got {self.fidelity!r}")

    def build_policy(self) -> RatePolicy:
        return self.policy if self.policy is not None \
            else ConstantRate(self.workload_rate)


@dataclass(frozen=True)
class EnvSpec:
    """Declarative environment configuration — the knobs a problem (or a
    scaling experiment) turns without touching environment wiring.

    ``fidelity`` selects the execution tier; everything else mirrors the
    corresponding :class:`CloudEnvironment` constructor parameter.
    Single-app by construction; multi-app problems pass a list of
    :class:`AppSpec` to :class:`CloudEnvironment` directly.
    """

    seed: int = 0
    workload_rate: float = 60.0
    policy: Optional[RatePolicy] = None
    fidelity: str = "per_request"
    resync_interval: float = 30.0
    export_root: Optional[str | Path] = None
    #: resource-plane knobs (see docs/design/resources.md); the defaults
    #: leave benchmark environments bit-identical to the seed
    resource_coupling: bool = False
    node_specs: Optional[tuple[NodeSpec, ...]] = None
    autoscale: Optional[tuple[HpaPolicy, ...]] = None

    def __post_init__(self) -> None:
        if self.fidelity not in FIDELITY_TIERS:
            raise ValueError(
                f"fidelity must be one of {FIDELITY_TIERS}, "
                f"got {self.fidelity!r}")


class CloudEnvironment:
    """Deploys one or more applications and wires every subsystem to one
    virtual clock.

    This is the ``E`` part of the problem context ``C = ⟨E, I⟩`` — the
    service, fault and workload conditions the problem occurs under; it is
    *not* shared with the agent (the agent only sees it through the ACI).

    Parameters
    ----------
    apps:
        Either an :class:`~repro.apps.base.App` subclass (the single-app
        form — ``workload_rate``/``policy`` configure its driver exactly
        as they always have) or a sequence of :class:`AppSpec`, one per
        hosted application.  Apps deploy in order into their own
        namespaces on the shared cluster; the first app is the
        environment's *primary* app — ``env.app`` / ``env.driver`` /
        ``env.namespace`` keep pointing at it, and its metric names stay
        unqualified in the telemetry collector.
    resync_interval:
        Period (virtual seconds) of the controller-resync event that
        re-runs the cluster's reconciling controllers, like the real
        controller manager's sync loop.  ``0`` disables it.  On a
        converged cluster a resync is a pure no-op (no RNG draws, no
        events recorded), so it never perturbs determinism.
    resource_coupling:
        When True, every runtime is attached to the environment's
        :class:`~repro.kubesim.resources.ResourcePlane`: request demand
        rolls up into node utilization, and overcommitted nodes degrade
        *all* co-located pods (emergent noisy-neighbor, no fault
        injection needed).  Off by default — the seed execution paths
        stay bit-identical.
    node_specs:
        Cluster topology (:class:`~repro.kubesim.resources.NodeSpec`
        list).  ``None`` keeps the historical single ``node-0``.
    autoscale:
        :class:`~repro.kubesim.controllers.HpaPolicy` list; non-empty
        activates the :class:`HorizontalAutoscaler` on the resync loop
        and the resource-plane rollup tick.
    resource_interval:
        Rollup cadence (virtual seconds) when the plane is active —
        matches the 5 s telemetry-scrape cadence by default.
    """

    def __init__(
        self,
        apps: Union[Type[App], Sequence[AppSpec]],
        seed: int = 0,
        workload_rate: float = 60.0,
        policy: Optional[RatePolicy] = None,
        export_root: Optional[str | Path] = None,
        resync_interval: float = 30.0,
        fidelity: str = "per_request",
        resource_coupling: bool = False,
        node_specs: Optional[Sequence[NodeSpec]] = None,
        autoscale: Optional[Sequence[HpaPolicy]] = None,
        resource_interval: float = 5.0,
    ) -> None:
        if fidelity not in FIDELITY_TIERS:
            raise ValueError(
                f"fidelity must be one of {FIDELITY_TIERS}, got {fidelity!r}")
        if isinstance(apps, type) and issubclass(apps, App):
            specs = [AppSpec(apps, policy=policy, workload_rate=workload_rate)]
        else:
            if policy is not None or workload_rate != 60.0:
                raise ValueError(
                    "workload_rate/policy configure the single-app form "
                    "only; with a spec list, set them per app on each "
                    "AppSpec")
            specs = list(apps)
            if not specs:
                raise ValueError("CloudEnvironment needs at least one AppSpec")
            if not all(isinstance(s, AppSpec) for s in specs):
                raise TypeError(
                    "apps must be an App subclass or a sequence of AppSpec")
        namespaces = [s.app_cls.namespace for s in specs]
        if len(set(namespaces)) != len(namespaces):
            raise ValueError(
                f"hosted apps must live in distinct namespaces, "
                f"got {namespaces}")
        self.app_specs: list[AppSpec] = specs
        self.seed = seed
        self.fidelity = fidelity
        self.clock = SimClock()
        self.queue = EventQueue(self.clock)
        self.cluster = Cluster(clock=self.clock, seed=seed,
                               node_specs=node_specs)
        self.collector = TelemetryCollector(self.clock, seed=seed)
        self.resource_coupling = resource_coupling
        plane_active = bool(resource_coupling or autoscale)
        self.resources = ResourcePlane(self.cluster, self.clock,
                                       interval=resource_interval,
                                       coupled=resource_coupling)
        self.autoscaler = HorizontalAutoscaler(self.cluster, self.resources)
        for hpa_policy in (autoscale or ()):
            self.autoscaler.add(hpa_policy)
        if autoscale:
            self.cluster.attach_autoscaler(self.autoscaler)
        # the first app's namespace keeps bare metric names (single-app
        # telemetry stays bit-identical); other namespaces are qualified
        self.collector.default_namespace = namespaces[0]
        self.helm = Helm(self.cluster)
        self.apps: list[App] = []
        self.drivers: list[WorkloadDriver] = []
        self._apps_by_ns: dict[str, App] = {}
        self._drivers_by_ns: dict[str, WorkloadDriver] = {}
        for i, spec in enumerate(specs):
            app = spec.app_cls()
            runtime = app.deploy(
                self.cluster, self.collector, helm=self.helm, seed=seed
            )
            self.resources.register_runtime(runtime)
            if plane_active:
                # attached whenever the plane rolls up: demand accounting
                # feeds the autoscaler even when contention coupling is
                # off (the uncoupled plane never degrades anything)
                runtime.resources = self.resources
            driver = WorkloadDriver(
                runtime,
                app.workload_mix(),
                spec.build_policy(),
                seed=seed,
                queue=self.queue,
                mode=spec.fidelity or fidelity,
                # the first app keeps the historical stream name, so the
                # single-app wrapper draws bit-identical arrival sequences
                rng_stream="workload" if i == 0
                else f"workload/{app.namespace}",
            )
            self.apps.append(app)
            self.drivers.append(driver)
            self._apps_by_ns[app.namespace] = app
            self._drivers_by_ns[app.namespace] = driver
        self.app: App = self.apps[0]
        self.runtime = self.app.runtime
        self.driver = self.drivers[0]
        self.kubectl = Kubectl(
            self.cluster,
            log_source=self.collector.kubectl_log_source,
            exec_handler=self._exec_dispatch,
            metrics_source=self.collector.kubectl_metrics_source(self.cluster),
            # node utilization columns only exist when the plane rolls up
            # (seed environments keep byte-identical kubectl output)
            node_metrics_source=(
                self.resources.kubectl_node_metrics_source()
                if plane_active else None),
        )
        self._owns_export_root = export_root is None
        root = Path(export_root) if export_root else Path(tempfile.mkdtemp(
            prefix=f"aiopslab-{self.app.name}-"))
        self.export_root = root
        self.exporter = TelemetryExporter(self.collector, root)
        self._resync = self.queue.schedule_every(
            resync_interval, self.cluster.resync, label="controller.resync",
            passive=True,  # a converged-cluster resync can't affect workload
        ) if resync_interval > 0 else None
        # the plane's rollup tick is only scheduled when something reads
        # it, so seed environments run an unchanged event sequence; it is
        # never passive — a rollup can shift latency multipliers or make
        # the autoscaler rescale, both workload-visible
        self._rollup = self.queue.schedule_every(
            resource_interval, self._resource_tick, label="resources.rollup",
        ) if plane_active and resource_interval > 0 else None
        self.closed = False

    def _resource_tick(self) -> None:
        """One plane step: roll demand up into node pressure, then give
        the autoscaler a look at the fresh utilization numbers."""
        self.resources.rollup()
        self.autoscaler.evaluate()

    @classmethod
    def from_spec(cls, app_cls: Type[App], spec: EnvSpec) -> "CloudEnvironment":
        """Build a single-app environment from a declarative :class:`EnvSpec`."""
        return cls(
            app_cls,
            seed=spec.seed,
            workload_rate=spec.workload_rate,
            policy=spec.policy,
            export_root=spec.export_root,
            resync_interval=spec.resync_interval,
            fidelity=spec.fidelity,
            resource_coupling=spec.resource_coupling,
            node_specs=spec.node_specs,
            autoscale=spec.autoscale,
        )

    # ------------------------------------------------------------------
    # multi-app accessors
    # ------------------------------------------------------------------
    @property
    def namespace(self) -> str:
        """The primary (first) app's namespace."""
        return self.app.namespace

    @property
    def namespaces(self) -> list[str]:
        """Every hosted app's namespace, in deployment order."""
        return [a.namespace for a in self.apps]

    def app_for(self, namespace: str,
                fallback: Optional[App] = None) -> App:
        """The app deployed in ``namespace``.

        Raises ``KeyError`` for an unhosted namespace unless ``fallback``
        is given — the get-or-primary rule the exec dispatcher and the
        ACI share.
        """
        app = self._apps_by_ns.get(namespace)
        if app is not None:
            return app
        if fallback is not None:
            return fallback
        raise KeyError(
            f"no app in namespace {namespace!r}; hosted: "
            f"{self.namespaces}")

    def driver_for(self, namespace: str) -> WorkloadDriver:
        """The workload driver for the app in ``namespace``."""
        try:
            return self._drivers_by_ns[namespace]
        except KeyError:
            raise KeyError(
                f"no driver for namespace {namespace!r}; hosted: "
                f"{self.namespaces}") from None

    def _exec_dispatch(self, namespace: str, pod: str,
                       argv: list[str]) -> str:
        """Route ``kubectl exec`` to the app that owns ``namespace``.

        Unknown namespaces fall through to the primary app's handler,
        which produces the historical not-managed-by error text.
        """
        app = self.app_for(namespace, fallback=self.app)
        return app.exec_handler(namespace, pod, argv)

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    def advance(self, seconds: float) -> None:
        """Let the environment live for ``seconds`` of virtual time: every
        app's workload, scrapes, controller resync and any scheduled fault
        timeline all fire as events on the one queue."""
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        end = self.clock.now + seconds
        for driver in self.drivers:
            driver.begin_window(end)
        self.queue.run_until(end)

    def probe_error_rate(self, seconds: float = 10.0,
                         namespace: Optional[str] = None) -> float:
        """Run load for a window and return the fraction of failed requests.

        Aggregated across every hosted app by default; pass ``namespace``
        to probe one app's traffic only.
        """
        drivers = [self.driver_for(namespace)] if namespace is not None \
            else self.drivers
        before = [(d.stats.requests, d.stats.errors) for d in drivers]
        self.advance(seconds)
        n = sum(d.stats.requests - b[0] for d, b in zip(drivers, before))
        e = sum(d.stats.errors - b[1] for d, b in zip(drivers, before))
        return e / n if n else 0.0

    # ------------------------------------------------------------------
    # snapshot / fork
    # ------------------------------------------------------------------
    def snapshot(self, extras: Any = None) -> "EnvSnapshot":
        """Capture the full simulation state into a picklable
        :class:`EnvSnapshot`.

        Everything reachable from the environment is captured in one
        pickle graph: cluster objects, telemetry stores, armed fault
        schedules (their queue events and metric watches point back at the
        schedule), RNG stream positions and event-queue contents.  A
        forked copy's subsequent evolution is bit-identical to a fresh
        environment advanced to the same point — the property the
        kernel-equivalence suite pins.

        ``extras`` rides along in the same graph, so anything in it that
        references the environment (a :class:`~repro.core.problem.Problem`
        holding an injector, an armed schedule handle) resolves to the
        *forked* environment on rehydration — use
        :meth:`EnvSnapshot.fork_with_extras` to get it back.
        """
        payload = pickle.dumps({"env": self, "extras": extras},
                               protocol=pickle.HIGHEST_PROTOCOL)
        return EnvSnapshot(payload, taken_at=self.clock.now,
                           app_names=[a.name for a in self.apps])

    def close(self) -> None:
        """Release the environment's on-disk footprint.

        Cancels the recurring resync event and removes the telemetry
        export directory *if this environment created it* (a caller-
        provided ``export_root`` is the caller's to manage).  Idempotent;
        the in-memory simulation stays usable for post-mortem inspection.
        """
        if self.closed:
            return
        self.closed = True
        if self._resync is not None:
            self._resync.cancel()
        if self._rollup is not None:
            self._rollup.cancel()
        if self._owns_export_root:
            shutil.rmtree(self.export_root, ignore_errors=True)


class EnvSnapshot:
    """A frozen, picklable capture of a :class:`CloudEnvironment`.

    The payload is a single pickle of the environment (and any ``extras``
    passed to :meth:`CloudEnvironment.snapshot`), so a snapshot can be
    shipped across process boundaries — warm benchmark workers inherit
    one by fork and rehydrate per grid cell instead of re-running
    deploy + warmup + fault soak.  Each :meth:`fork` call produces an
    independent environment: forks share no mutable state with each other
    or with the environment the snapshot was taken from.
    """

    def __init__(self, payload: bytes, taken_at: float,
                 app_names: Sequence[str]) -> None:
        self.payload = payload
        #: virtual time the snapshot was taken at
        self.taken_at = taken_at
        self.app_names = list(app_names)

    @property
    def size_bytes(self) -> int:
        return len(self.payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"EnvSnapshot(apps={self.app_names}, t={self.taken_at:g}, "
                f"{self.size_bytes:,} bytes)")

    def fork(self) -> CloudEnvironment:
        """Rehydrate an independent environment at the snapshot point."""
        return self.fork_with_extras()[0]

    def fork_with_extras(self) -> tuple[CloudEnvironment, Any]:
        """Rehydrate and also return the co-captured ``extras`` object,
        whose environment references resolve to the forked environment
        (one pickle memo covers both)."""
        state = pickle.loads(self.payload)
        env: CloudEnvironment = state["env"]
        # every fork owns a fresh export directory: the captured path may
        # belong to a still-open environment (or not exist in a worker)
        env.export_root = Path(tempfile.mkdtemp(
            prefix=f"aiopslab-{env.app.name}-"))
        env._owns_export_root = True
        env.exporter = TelemetryExporter(env.collector, env.export_root)
        env.closed = False
        return env, state["extras"]
