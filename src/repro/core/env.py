"""One problem's operational environment: app + cluster + telemetry + load."""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Optional, Type

from repro.apps.base import App
from repro.kubesim import Cluster, Helm, Kubectl
from repro.simcore import SimClock
from repro.telemetry import TelemetryCollector, TelemetryExporter
from repro.workload import ConstantRate, RatePolicy, WorkloadDriver


class CloudEnvironment:
    """Deploys an application and wires every subsystem to one virtual clock.

    This is the ``E`` part of the problem context ``C = ⟨E, I⟩`` — the
    service, fault and workload conditions the problem occurs under; it is
    *not* shared with the agent (the agent only sees it through the ACI).
    """

    def __init__(
        self,
        app_cls: Type[App],
        seed: int = 0,
        workload_rate: float = 60.0,
        policy: Optional[RatePolicy] = None,
        export_root: Optional[str | Path] = None,
    ) -> None:
        self.seed = seed
        self.clock = SimClock()
        self.cluster = Cluster(clock=self.clock, seed=seed)
        self.collector = TelemetryCollector(self.clock, seed=seed)
        self.helm = Helm(self.cluster)
        self.app: App = app_cls()
        self.runtime = self.app.deploy(
            self.cluster, self.collector, helm=self.helm, seed=seed
        )
        self.driver = WorkloadDriver(
            self.runtime,
            self.app.workload_mix(),
            policy or ConstantRate(workload_rate),
            seed=seed,
        )
        self.kubectl = Kubectl(
            self.cluster,
            log_source=self.collector.kubectl_log_source,
            exec_handler=self.app.exec_handler,
            metrics_source=self.collector.kubectl_metrics_source(self.cluster),
        )
        root = Path(export_root) if export_root else Path(tempfile.mkdtemp(
            prefix=f"aiopslab-{self.app.name}-"))
        self.exporter = TelemetryExporter(self.collector, root)

    @property
    def namespace(self) -> str:
        return self.app.namespace

    def advance(self, seconds: float) -> None:
        """Let the environment live for ``seconds`` of virtual time
        (workload continues, telemetry is scraped)."""
        self.driver.run_for(seconds)

    def probe_error_rate(self, seconds: float = 10.0) -> float:
        """Run load for a window and return the fraction of failed requests."""
        before_req = self.driver.stats.requests
        before_err = self.driver.stats.errors
        self.driver.run_for(seconds)
        n = self.driver.stats.requests - before_req
        e = self.driver.stats.errors - before_err
        return e / n if n else 0.0
