"""Optional qualitative trajectory evaluation — LLM-as-Judge (§2.2.3, §4).

The judge checks whether the agent's submission is *supported by the
evidence it actually gathered*, catching right-answer-wrong-reasoning cases
(§4's example: an agent answers "yes" while citing a normal workload).

A real LLM can be plugged in through the ``llm`` callable; the default is a
deterministic rubric over the trajectory, which is what the simulated
backends use.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.session import Session

#: observation substrings that count as fault evidence
_EVIDENCE_PATTERNS = (
    "ERROR", "error span", "CrashLoopBackOff", "Pending", "connection refused",
    "not authorized", "Authentication failed", "Could not find user",
    "packet dropped", "panic:", "0/", "err_rate",
)


@dataclass
class Verdict:
    """The judge's assessment of one session."""

    grounded: bool           # the submission is supported by gathered evidence
    score: float             # 0..1 rubric score
    rationale: str


class LlmJudge:
    """Grades a session transcript against the submission.

    Parameters
    ----------
    llm:
        Optional ``prompt -> response`` callable; when provided, its response
        (expected to contain ``GROUNDED`` or ``UNGROUNDED``) overrides the
        rubric.
    """

    def __init__(self, llm: Optional[Callable[[str], str]] = None) -> None:
        self.llm = llm

    def judge(self, session: Session, expected_task: str) -> Verdict:
        if self.llm is not None:
            prompt = self._prompt(session, expected_task)
            response = self.llm(prompt)
            grounded = "UNGROUNDED" not in response.upper() and \
                "GROUNDED" in response.upper()
            return Verdict(grounded=grounded,
                           score=1.0 if grounded else 0.0,
                           rationale=response.strip())
        return self._rubric(session, expected_task)

    # ------------------------------------------------------------------
    #: phrases that *mention* error terminology while asserting cleanliness
    _CLEAN_PHRASES = ("No ERROR-level log lines", "No error spans",
                      "No resources found")

    def _rubric(self, session: Session, expected_task: str) -> Verdict:
        def is_evidence(obs: str) -> bool:
            if obs.startswith("Error:"):
                return False
            scrubbed = obs
            for phrase in self._CLEAN_PHRASES:
                scrubbed = scrubbed.replace(phrase, "")
            return any(pat in scrubbed for pat in _EVIDENCE_PATTERNS)

        evidence_steps = [s for s in session.steps if is_evidence(s.observation)]
        gathered_any = any(
            s.action_name in ("get_logs", "get_metrics", "get_traces", "exec_shell")
            for s in session.steps
        )
        sol = str(session.solution).lower()
        if expected_task == "detection":
            if sol.strip("[]'\" ") == "yes":
                grounded = bool(evidence_steps)
                why = ("fault claim supported by error evidence in trajectory"
                       if grounded else
                       "agent claimed a fault but gathered no supporting evidence")
            else:
                grounded = gathered_any and not evidence_steps
                why = ("no-fault claim consistent with clean telemetry"
                       if grounded else
                       "agent claimed no fault despite error evidence (or "
                       "without checking telemetry)")
        else:
            # answer tasks: the named services/causes should appear in evidence
            named = set(re.findall(r"[a-z][a-z0-9-]{2,}", sol))
            seen_text = " ".join(s.observation for s in evidence_steps).lower()
            overlap = [n for n in named if n in seen_text]
            grounded = bool(evidence_steps) and (bool(overlap) or not named)
            why = (f"submission terms {overlap} appear in gathered evidence"
                   if grounded else
                   "submission names entities never observed in the trajectory")
        score = 1.0 if grounded else 0.0
        return Verdict(grounded=grounded, score=score, rationale=why)

    @staticmethod
    def _prompt(session: Session, expected_task: str) -> str:
        return (
            "You are judging an AIOps agent's trajectory.\n"
            f"Task type: {expected_task}\n"
            f"Transcript:\n{session.transcript()}\n\n"
            "Is the final submission GROUNDED in the evidence the agent "
            "gathered, or UNGROUNDED? Answer with one word and a reason."
        )
