"""The AgentOps incident lifecycle (Figure 1): one incident, four chained
tasks on the *same* live environment.

The benchmark proper evaluates each task level in isolation (fresh
environment per problem).  This module implements the end-to-end vision
the paper motivates: an agent detects the incident, localizes it, analyzes
the root cause, and mitigates — sequentially, with the environment carried
over between stages and each stage graded by its own task oracle.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.aci import SubmissionReceived, TaskActions, registry_for
from repro.core.env import CloudEnvironment
from repro.core.evaluator import Evaluator
from repro.core.parser import ActionParseError, parse_action
from repro.core.problem import (
    AnalysisTask, DetectionTask, LocalizationTask, MitigationTask, Problem,
)
from repro.core.session import Session, Step

#: lifecycle stage order (Figure 1)
STAGES: tuple[str, ...] = ("detection", "localization", "analysis",
                           "mitigation")

_STAGE_CLASSES: dict[str, type[Problem]] = {
    "detection": DetectionTask,
    "localization": LocalizationTask,
    "analysis": AnalysisTask,
    "mitigation": MitigationTask,
}

#: agent factory: (stage, prob_desc, instructs, apis) -> agent object
AgentFactory = Callable[[str, str, str, str], Any]


@dataclass
class StageResult:
    """One lifecycle stage's outcome."""

    stage: str
    success: bool
    solution: Any
    duration_s: float
    steps: int
    session: Session
    details: dict[str, Any] = field(default_factory=dict)


@dataclass
class LifecycleResult:
    """The full incident's outcome."""

    fault: str
    target: str
    stages: list[StageResult] = field(default_factory=list)

    @property
    def resolved(self) -> bool:
        """True if the incident was mitigated end to end."""
        return bool(self.stages) and self.stages[-1].stage == "mitigation" \
            and self.stages[-1].success

    @property
    def stages_passed(self) -> int:
        return sum(s.success for s in self.stages)

    def summary(self) -> str:
        lines = [f"incident: {self.fault} @ {self.target}"]
        for s in self.stages:
            mark = "PASS" if s.success else "FAIL"
            lines.append(f"  {s.stage:<13} {mark}  steps={s.steps} "
                         f"t={s.duration_s:.0f}s  answer={s.solution!r}")
        lines.append(f"resolved: {self.resolved}")
        return "\n".join(lines)


class IncidentLifecycle:
    """Runs the four-stage lifecycle for one fault on one environment.

    Parameters
    ----------
    fault:
        Table-2 fault name/number (must support all four levels).
    target:
        Injection target (defaults to the fault's first default target).
    seed:
        Environment + agent seed.
    max_steps_per_stage:
        Step budget per stage (the benchmark's per-problem budget).
    """

    def __init__(self, fault: str | int, target: Optional[str] = None,
                 seed: int = 0, max_steps_per_stage: int = 20) -> None:
        # Build one problem per stage sharing fault/target; stage problems
        # grade against the same ground truth, the environment is shared.
        self.problems: dict[str, Problem] = {
            stage: _STAGE_CLASSES[stage](fault, target=target)
            for stage in STAGES
        }
        first = self.problems["detection"]
        if first.spec is None or len(first.spec.task_levels) < 4:
            raise ValueError(
                f"fault {fault!r} does not support all four task levels")
        self.fault_name = first.spec.name
        self.target = first.target
        self.seed = seed
        self.max_steps_per_stage = max_steps_per_stage
        self.env: Optional[CloudEnvironment] = None

    # ------------------------------------------------------------------
    def run(self, agent_factory: AgentFactory) -> LifecycleResult:
        """Execute the lifecycle; a fresh agent is built per stage (the
        factory may share memory between them if it wants to)."""
        detection = self.problems["detection"]
        self.env = detection.create_environment(seed=self.seed)
        detection.start_workload(self.env)
        detection.inject_fault(self.env)
        # keep the single injection authoritative for every stage's oracle
        for stage in STAGES[1:]:
            self.problems[stage].injected_at = detection.injected_at

        actions = TaskActions(self.env)
        result = LifecycleResult(fault=self.fault_name, target=self.target)
        for stage in STAGES:
            stage_result = self._run_stage(stage, actions, agent_factory)
            result.stages.append(stage_result)
            if stage == "detection" and not stage_result.success:
                break  # an undetected incident is never triaged (Figure 1)
        return result

    # ------------------------------------------------------------------
    def _run_stage(self, stage: str, actions: TaskActions,
                   agent_factory: AgentFactory) -> StageResult:
        problem = self.problems[stage]
        env = self.env
        prob_desc = problem.problem_description(env)
        instructs = ("Interact step by step; one API call per response; "
                     "finish with submit(...).")
        registry = registry_for(stage)
        apis = registry.render_docs()
        agent = agent_factory(stage, prob_desc, instructs, apis)

        session = Session(pid=f"lifecycle-{self.fault_name}-{stage}",
                          agent_name=getattr(agent, "name", "agent"),
                          started_at=env.clock.now)
        solution: Any = None
        state = "Stage started. Take your first action."
        for index in range(self.max_steps_per_stage):
            raw = str(self._resolve(agent.get_action(state)))
            consume = getattr(agent, "consume_stats", None)
            latency = 5.0
            if callable(consume):
                in_tok, out_tok, latency = consume()
                session.add_tokens(in_tok, out_tok)
            env.advance(max(latency, 0.1))
            step = Step(index=index, time=env.clock.now, action_raw=raw,
                        action_name="", action_args=(), observation="")
            try:
                parsed = parse_action(raw, registry.names())
                step.action_name = parsed.name
                step.action_args = parsed.args
                obs = registry.execute(
                    actions, parsed.name, *parsed.args, **parsed.kwargs)
                step.observation = str(obs)
                step.payload = obs.payload
                step.artifacts = obs.artifacts
            except SubmissionReceived as sub:
                solution = sub.solution
                session.submitted = True
                session.solution = solution
                step.action_name = "submit"
                step.observation = "Solution submitted."
                session.add_step(step)
                break
            except ActionParseError as e:
                step.valid = False
                step.action_name = "invalid"
                step.observation = str(e)
            except Exception as e:  # noqa: BLE001 - feedback, not crash
                step.observation = f"Error: {e}"
            session.add_step(step)
            state = step.observation
        session.ended_at = env.clock.now

        evaluation = Evaluator(problem, env).evaluate(session, solution)
        success = evaluation.success and session.submitted
        return StageResult(
            stage=stage, success=success, solution=solution,
            duration_s=evaluation.duration_s, steps=evaluation.steps,
            session=session, details=evaluation.details,
        )

    @staticmethod
    def _resolve(result):
        """Support both sync and async ``get_action`` implementations."""
        import inspect

        if inspect.isawaitable(result):
            from repro.core.orchestrator import run_coroutine_sync

            async def _wrap():
                return await result

            return run_coroutine_sync(_wrap())
        return result
