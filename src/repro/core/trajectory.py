"""Trajectory persistence (§2.2.3: "the Orchestrator maintains comprehensive
logs of all agent trajectories ... facilitating detailed analysis and
debugging").

Sessions serialize to JSONL — one header line plus one line per step — so
they can be replayed into the bench figures or diffed across runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.core.session import Session, Step


def save_session(session: Session, path: str | Path) -> Path:
    """Write one session to a JSONL file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as f:
        f.write(json.dumps({
            "kind": "header",
            "pid": session.pid,
            "agent": session.agent_name,
            "started_at": session.started_at,
            "ended_at": session.ended_at,
            "input_tokens": session.input_tokens,
            "output_tokens": session.output_tokens,
            "submitted": session.submitted,
            "solution": _jsonable(session.solution),
        }) + "\n")
        for step in session.steps:
            f.write(json.dumps({
                "kind": "step",
                "index": step.index,
                "time": step.time,
                "action_raw": step.action_raw,
                "action_name": step.action_name,
                "action_args": [_jsonable(a) for a in step.action_args],
                "observation": step.observation,
                "valid": step.valid,
                "shell_command": step.shell_command,
                "payload": _jsonable(step.payload),
                "artifacts": list(step.artifacts),
            }) + "\n")
    return path


def load_session(path: str | Path) -> Session:
    """Read a session back from JSONL."""
    lines = Path(path).read_text().splitlines()
    if not lines:
        raise ValueError(f"empty trajectory file: {path}")
    header = json.loads(lines[0])
    if header.get("kind") != "header":
        raise ValueError(f"not a trajectory file (missing header): {path}")
    session = Session(
        pid=header["pid"], agent_name=header["agent"],
        started_at=header["started_at"],
    )
    session.ended_at = header.get("ended_at")
    session.input_tokens = header.get("input_tokens", 0)
    session.output_tokens = header.get("output_tokens", 0)
    session.submitted = header.get("submitted", False)
    session.solution = header.get("solution")
    for line in lines[1:]:
        rec = json.loads(line)
        if rec.get("kind") != "step":
            continue
        session.add_step(Step(
            index=rec["index"], time=rec["time"],
            action_raw=rec["action_raw"], action_name=rec["action_name"],
            action_args=tuple(rec["action_args"]),
            observation=rec["observation"], valid=rec.get("valid", True),
            shell_command=rec.get("shell_command", ""),
            payload=(rec.get("payload")
                     if isinstance(rec.get("payload"), dict) else {}),
            artifacts=tuple(rec.get("artifacts", ())),
        ))
    return session


def save_all(sessions: Iterable[Session], directory: str | Path) -> list[Path]:
    """Persist a batch of sessions as ``<agent>__<pid>.jsonl`` files."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for i, session in enumerate(sessions):
        name = f"{session.agent_name}__{session.pid}__{i:03d}.jsonl"
        paths.append(save_session(session, directory / name))
    return paths


def _jsonable(value):
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return repr(value)
