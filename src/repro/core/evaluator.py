"""Problem evaluation: success criteria, efficiency and cost metrics (§3.2)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.env import CloudEnvironment
    from repro.core.problem import Problem
    from repro.core.session import Session


def system_healthy(env: "CloudEnvironment",
                   probe_seconds: float = 10.0,
                   max_error_rate: float = 0.02) -> tuple[bool, str]:
    """Check the *general state of the entire system* (§2.1).

    Healthy means every deployment — in **every** hosted app's namespace —
    has its desired replicas ready (and at least one), no pod is
    Pending/CrashLooping, and a fresh probe workload (aggregated across
    all hosted apps' drivers) completes with an error rate under
    ``max_error_rate``.  Single-app environments behave exactly as
    before; multi-app mitigation is graded on the whole environment.
    """
    for ns in env.namespaces:
        for dep in env.cluster.deployments_in(ns):
            pods = env.cluster.pods_for_deployment(dep)
            ready = [p for p in pods if p.ready and not p.crash_looping]
            if dep.replicas < 1:
                return False, f"deployment {dep.name} scaled to zero"
            if len(ready) < dep.replicas:
                return False, (f"deployment {dep.name}: "
                               f"{len(ready)}/{dep.replicas} replicas ready")
        for pod in env.cluster.pods_in(ns):
            if pod.crash_looping:
                return False, f"pod {pod.name} is crash-looping"
            if pod.phase.value == "Pending":
                return False, f"pod {pod.name} is Pending"
    err = env.probe_error_rate(probe_seconds)
    if err > max_error_rate:
        return False, f"probe workload error rate {err:.1%} exceeds {max_error_rate:.0%}"
    return True, "system healthy"


@dataclass
class EvaluationResult:
    """Everything the problem evaluators record for one session."""

    pid: str
    task_type: str
    agent_name: str
    success: bool
    duration_s: float
    steps: int
    input_tokens: int
    output_tokens: int
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def total_tokens(self) -> int:
        return self.input_tokens + self.output_tokens


class Evaluator:
    """Runs a problem's grading against the agent's submission and session."""

    def __init__(self, problem: "Problem", env: "CloudEnvironment") -> None:
        self.problem = problem
        self.env = env

    def evaluate(self, session: "Session",
                 solution: Any) -> EvaluationResult:
        duration = session.elapsed()
        details = self.problem.eval(solution, session, duration, env=self.env)
        success = bool(details.get("success", False))
        return EvaluationResult(
            pid=self.problem.pid,
            task_type=self.problem.task_type,
            agent_name=session.agent_name,
            success=success,
            duration_s=duration,
            steps=len(session.steps),
            input_tokens=session.input_tokens,
            output_tokens=session.output_tokens,
            details=details,
        )
