"""LLM backend abstraction and the simulated, profile-gated policy backend.

:class:`LLMBackend` is the protocol a real API client would implement
(``complete(prompt) -> LLMResponse``).  :class:`SimulatedLLM` implements the
same surface over the grounded :class:`DiagnosticPolicy`, degraded by a
:class:`ModelProfile` — the knobs that make GPT-3.5 loop on malformed calls
while GPT-4 recovers, FLASH skip traces, and so on (§3.6's failure modes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol

from repro.agents.policy import DiagnosticPolicy
from repro.simcore import RngStream


@dataclass
class LLMResponse:
    """One model completion with its cost accounting."""

    text: str
    input_tokens: int
    output_tokens: int
    latency_s: float


class LLMBackend(Protocol):
    """Anything that can play the model role for an agent scaffold."""

    def complete(self, prompt: str) -> LLMResponse:  # pragma: no cover
        ...


@dataclass(frozen=True)
class ModelProfile:
    """Capability and cost parameters for one simulated model.

    The quality knobs act on *decisions*, not on dice-rolled answers: the
    underlying policy only ever uses ACI observations, and the profile
    determines how reliably the model follows that policy.
    """

    name: str
    #: P(answering "yes" when there really is a fault)
    detection_skill: float
    #: how many localization candidates the agent submits (1 or 3)
    submit_top_k: int
    #: P(correctly committing to the policy's answer when submitting)
    answer_skill: float
    #: P(labelling the root cause correctly once found) — RCA is the
    #: hardest labelling problem (Table 4c), distinct from finding the
    #: faulty service
    rca_skill: float
    #: P(dropping the true candidate entirely when the answer gate fails,
    #: vs merely demoting it) — separates acc@1 from acc@3
    loc_drop_rate: float
    #: P(choosing the policy's planned action instead of flailing)
    plan_skill: float
    #: P(emitting a malformed / invalid API call on any step)
    format_error_rate: float
    #: P(recovering after an error observation instead of repeating it)
    self_correct: float
    #: P(issuing the correct mitigation fix when one is planned)
    mitigation_skill: float
    #: P(false-positive "yes" on a healthy system)
    false_positive_rate: float
    #: tokens: per-step prompt base and per-step context growth
    in_tokens_base: int
    in_tokens_growth: int
    out_tokens_mean: float
    out_tokens_sigma: float
    #: seconds per model call
    latency_mean: float
    latency_sigma: float
    #: whether the model's policy ever reaches for traces (FLASH: no)
    uses_traces: bool = True


#: Calibrated so the benchmark reproduces the paper's orderings (Table 3/4):
#: FLASH > ReAct > GPT-4 >> GPT-3.5 overall; GPT-3.5 fast, loop-prone, 0% on
#: mitigation; only GPT-4 resists the Noop false positive.
PROFILES: dict[str, ModelProfile] = {
    "gpt-4-w-shell": ModelProfile(
        name="gpt-4-w-shell",
        detection_skill=0.65, submit_top_k=1,
        answer_skill=0.62, rca_skill=0.40, loc_drop_rate=0.65,
        plan_skill=0.85, format_error_rate=0.06,
        self_correct=0.75, mitigation_skill=0.40, false_positive_rate=0.05,
        in_tokens_base=900, in_tokens_growth=120,
        out_tokens_mean=34, out_tokens_sigma=8,
        latency_mean=3.4, latency_sigma=0.8,
    ),
    "gpt-3.5-w-shell": ModelProfile(
        name="gpt-3.5-w-shell",
        detection_skill=0.40, submit_top_k=1,
        answer_skill=0.45, rca_skill=0.0, loc_drop_rate=0.65,
        plan_skill=0.45, format_error_rate=0.32,
        self_correct=0.25, mitigation_skill=0.0, false_positive_rate=0.9,
        in_tokens_base=110, in_tokens_growth=18,
        out_tokens_mean=28, out_tokens_sigma=8,
        latency_mean=0.85, latency_sigma=0.2,
    ),
    "react": ModelProfile(
        name="react",
        detection_skill=0.65, submit_top_k=3,
        answer_skill=0.54, rca_skill=0.40, loc_drop_rate=0.80,
        plan_skill=0.88, format_error_rate=0.10,
        self_correct=0.9, mitigation_skill=0.45, false_positive_rate=0.85,
        in_tokens_base=1600, in_tokens_growth=320,
        out_tokens_mean=80, out_tokens_sigma=18,
        latency_mean=3.6, latency_sigma=0.9,
    ),
    "flash": ModelProfile(
        name="flash",
        detection_skill=1.0, submit_top_k=3,
        answer_skill=0.44, rca_skill=0.28, loc_drop_rate=0.85,
        plan_skill=0.92, format_error_rate=0.05,
        self_correct=0.85, mitigation_skill=0.50, false_positive_rate=0.9,
        in_tokens_base=700, in_tokens_growth=110,
        out_tokens_mean=18, out_tokens_sigma=5,
        latency_mean=10.5, latency_sigma=2.5,
        uses_traces=False,
    ),
    # -- ablation profiles (not part of the paper's agent set) ------------
    # "oracle" shows the environment's headroom: a model that always follows
    # the grounded policy perfectly.  "random" shows the floor: a model that
    # never plans and never commits correctly.
    "oracle": ModelProfile(
        name="oracle",
        detection_skill=1.0, submit_top_k=3,
        answer_skill=1.0, rca_skill=1.0, loc_drop_rate=0.0,
        plan_skill=1.0, format_error_rate=0.0,
        self_correct=1.0, mitigation_skill=1.0, false_positive_rate=0.0,
        in_tokens_base=900, in_tokens_growth=120,
        out_tokens_mean=34, out_tokens_sigma=8,
        latency_mean=3.0, latency_sigma=0.5,
    ),
    "random": ModelProfile(
        name="random",
        detection_skill=0.5, submit_top_k=1,
        answer_skill=0.0, rca_skill=0.0, loc_drop_rate=1.0,
        plan_skill=0.0, format_error_rate=0.3,
        self_correct=0.2, mitigation_skill=0.0, false_positive_rate=0.5,
        in_tokens_base=500, in_tokens_growth=80,
        out_tokens_mean=30, out_tokens_sigma=10,
        latency_mean=2.0, latency_sigma=0.5,
    ),
}


class SimulatedLLM:
    """A grounded policy behind the LLM interface.

    The scaffold calls :meth:`decide` each step with the latest observation;
    the response is an action string plus token/latency accounting, after
    the profile's corruption gates have been applied.
    """

    def __init__(self, profile: ModelProfile, task_type: str,
                 prob_desc: str, seed: int = 0) -> None:
        self.profile = profile
        self.rng = RngStream(seed, f"llm/{profile.name}")
        self.policy = DiagnosticPolicy(
            task_type, self.rng.child("policy"), use_traces=profile.uses_traces
        )
        self.policy.ingest_context(prob_desc)
        self.task_type = task_type
        self._last_action: Optional[str] = None
        self._step = 0

    # -- the LLMBackend surface (for the judge / generic callers) -----------
    def complete(self, prompt: str) -> LLMResponse:
        """Treat ``prompt``'s tail as the observation and decide."""
        state = prompt.rsplit("\n", 1)[-1]
        return self.decide(state)

    # -- scaffold entry point -------------------------------------------------
    def decide(self, state: str) -> LLMResponse:
        p = self.profile
        self._step += 1
        self.policy.ingest_observation(state)

        action = self._choose_action(state)
        self._last_action = action

        in_tokens = p.in_tokens_base + p.in_tokens_growth * self._step \
            + len(state) // 8
        out_tokens = max(int(self.rng.normal(p.out_tokens_mean,
                                             p.out_tokens_sigma)), 4)
        latency = max(self.rng.normal(p.latency_mean, p.latency_sigma), 0.2)
        return LLMResponse(action, in_tokens, out_tokens, latency)

    # ------------------------------------------------------------------
    def _choose_action(self, state: str) -> str:
        p = self.profile
        rng = self.rng

        # 1. error recovery: weak models repeat their mistake (§3.6.3)
        if state.startswith("Error:") and self._last_action is not None:
            if not rng.bernoulli(p.self_correct):
                return self._last_action

        planned = self.policy.next_action()

        # 2. commitment gates on final answers / fixes
        if planned.startswith("submit"):
            planned = self._gate_submission(planned)
        elif self._is_fix_action(planned):
            if not rng.bernoulli(p.mitigation_skill):
                planned = self._wrong_fix()

        # 3. flailing: choose a generic telemetry action instead of the plan
        #    (fix actions are exempt — they are gated by mitigation_skill)
        if not planned.startswith("submit") and not self._is_fix_action(planned) \
                and not rng.bernoulli(p.plan_skill):
            planned = self.policy.flail_action()

        # 4. formatting failures
        if rng.bernoulli(p.format_error_rate):
            planned = self._corrupt(planned)
        return planned

    def _is_fix_action(self, action: str) -> bool:
        return self.policy.last_plan_was_fix and action.startswith("exec_shell")

    # -- gates -------------------------------------------------------------
    def _gate_submission(self, planned: str) -> str:
        p, rng, b = self.profile, self.rng, self.policy.belief
        if self.task_type == "detection":
            if 'submit("no")' in planned and rng.bernoulli(p.false_positive_rate):
                return 'submit("yes")'  # §3.6.4: misreading normal activity
            if 'submit("yes")' in planned and not rng.bernoulli(p.detection_skill):
                # under-confident misread of real evidence
                return 'submit("no")'
            return planned
        if self.task_type == "localization":
            k = max(p.submit_top_k, 1)
            ranked = self.policy.suspects()
            suspects = ranked[:k]
            if suspects and not rng.bernoulli(p.answer_skill):
                decoys = self.policy.decoy_candidates(exclude=ranked[0])
                if rng.bernoulli(p.loc_drop_rate):
                    # convinced by the symptom: the true candidate vanishes
                    suspects = decoys[:k] or suspects
                else:
                    # demote the true candidate below the symptom services
                    suspects = (decoys[:k - 1] + ranked[:1])[:k] \
                        if k > 1 else decoys[:1] or suspects
            return f"submit({suspects!r})"
        if self.task_type == "analysis":
            if not rng.bernoulli(p.rca_skill):
                # mislabelling modes observed in the paper: free-text instead
                # of the structured dict, or wrong taxonomy labels
                if rng.bernoulli(0.35):
                    return 'submit("the root cause is a misconfiguration")'
                ans = self.policy.rca_answer()
                ans["fault_type"] = "misconfiguration" \
                    if ans["fault_type"] != "misconfiguration" else "operation_error"
                if rng.bernoulli(0.65):
                    ans["system_level"] = "application" \
                        if ans["system_level"] != "application" else "virtualization"
                return f"submit({ans!r})"
            return planned
        return planned

    def _wrong_fix(self) -> str:
        """A plausible but ineffective mitigation (restart the symptom)."""
        b = self.policy.belief
        ns = b.namespace or "default"
        target = b.diagnosis.target if b.diagnosis else "frontend"
        return (f'exec_shell("kubectl rollout restart deployment {target} '
                f'-n {ns}")')

    def _corrupt(self, action: str) -> str:
        """Produce one of the malformed-call patterns §3.6.3 catalogues."""
        rng = self.rng
        kind = rng.choice(["unquoted", "bad_api", "bad_arg", "prose"])
        if kind == "unquoted":
            return action.replace('"', "", 2)
        if kind == "bad_api":
            return action.replace("get_", "fetch_", 1) if "get_" in action \
                else "run_diagnostics()"
        if kind == "bad_arg":
            ns = self.policy.belief.namespace or "default"
            return f'get_logs("{ns}", "Social Network")'
        return "I apologize for the error. Here is the API call again: " + action
