"""Agent registry: name → scaffold/profile, plus the LoC metric of Table 3."""

from __future__ import annotations

import inspect

from repro.agents.base import AgentBase
from repro.agents.flash import FlashAgent
from repro.agents.gpt_shell import GptWithShellAgent
from repro.agents.react import ReactAgent

#: the four evaluated agents, in Table 3 order
AGENT_NAMES: tuple[str, ...] = (
    "gpt-4-w-shell", "gpt-3.5-w-shell", "react", "flash",
)

_SCAFFOLDS: dict[str, type[AgentBase]] = {
    "gpt-4-w-shell": GptWithShellAgent,
    "gpt-3.5-w-shell": GptWithShellAgent,
    "react": ReactAgent,
    "flash": FlashAgent,
    # ablation-only profiles (headroom / floor), not in AGENT_NAMES
    "oracle": GptWithShellAgent,
    "random": GptWithShellAgent,
}


def build_agent(name: str, prob_desc: str, instructs: str, apis: str,
                task_type: str, seed: int = 0) -> AgentBase:
    """Instantiate a registered agent for one problem instance."""
    try:
        scaffold = _SCAFFOLDS[name]
    except KeyError:
        raise KeyError(
            f"unknown agent {name!r}; available: {', '.join(AGENT_NAMES)}"
        ) from None
    return scaffold(prob_desc, instructs, apis, task_type,
                    profile=name, seed=seed)


def build_agent_for(name: str, context, task_type: str,
                    seed: int = 0) -> AgentBase:
    """Instantiate a registered agent from a v2 ``SessionContext``.

    ``context`` is anything that unpacks as (description, instructions,
    api_docs) — the object ``Orchestrator.create_session`` hands back on
    its handle.
    """
    prob_desc, instructs, apis = context
    return build_agent(name, prob_desc, instructs, apis, task_type, seed=seed)


class _RegisteredAgentFactory:
    """Picklable :data:`repro.core.batch.AgentFactory` for one registered
    agent — a module-level class (not a closure) so ``SessionSpec``\\ s that
    carry it survive the trip to process-pool workers."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __call__(self, context, task_type: str, seed: int) -> AgentBase:
        return build_agent_for(self.name, context, task_type, seed=seed)

    def __repr__(self) -> str:
        return f"agent_factory({self.name!r})"

    def __reduce__(self):
        return (_RegisteredAgentFactory, (self.name,))


def agent_factory(name: str) -> _RegisteredAgentFactory:
    """An :data:`repro.core.batch.AgentFactory` for one registered agent —
    the glue between the agent registry and ``SessionSpec``.  The returned
    factory is picklable, so specs built from it work under the
    process-pool executor."""
    return _RegisteredAgentFactory(name)


def registration_loc(name: str) -> int:
    """Lines of code to register the agent in the framework (Table 3's LoC).

    Counted as the source lines of the agent's scaffold class beyond the
    shared base — the wrapper a user writes to onboard their agent.
    """
    scaffold = _SCAFFOLDS[name]
    own = len(inspect.getsource(scaffold).splitlines())
    base = len(inspect.getsource(AgentBase).splitlines())
    # The naive shell agents effectively re-use the base wrapper; their
    # registration cost is the base wrapper itself.
    if scaffold is GptWithShellAgent:
        return base - 20  # minus docstrings/blank padding of the base
    return own + 25  # scaffold plus the minimal wiring in user code


def task_type_of(pid: str) -> str:
    """``..._hotel_res-localization-2`` → ``localization``."""
    for task in ("detection", "localization", "analysis", "mitigation"):
        if f"-{task}-" in pid:
            return task
    raise ValueError(f"cannot infer task type from pid {pid!r}")
