"""The four evaluated agents (§3.1) plus the LLM backend abstraction.

The agent *scaffolds* — prompt assembly, the ReAct thought/action loop,
FLASH's hindsight generation — are implemented for real; the next-token
oracle behind them is :class:`SimulatedLLM`, a grounded diagnostic policy
parameterized by a per-model :class:`ModelProfile` (see DESIGN.md for the
substitution rationale).  Any real LLM can be slotted in by implementing
:class:`LLMBackend`.
"""

from repro.agents.llm import (
    LLMBackend,
    LLMResponse,
    ModelProfile,
    SimulatedLLM,
    PROFILES,
)
from repro.agents.policy import Belief, DiagnosticPolicy, Diagnosis
from repro.agents.base import AgentBase
from repro.agents.gpt_shell import GptWithShellAgent
from repro.agents.react import ReactAgent
from repro.agents.flash import FlashAgent
from repro.agents.registry import (
    AGENT_NAMES,
    agent_factory,
    build_agent,
    build_agent_for,
    registration_loc,
)

__all__ = [
    "LLMBackend",
    "LLMResponse",
    "ModelProfile",
    "SimulatedLLM",
    "PROFILES",
    "Belief",
    "DiagnosticPolicy",
    "Diagnosis",
    "AgentBase",
    "GptWithShellAgent",
    "ReactAgent",
    "FlashAgent",
    "AGENT_NAMES",
    "agent_factory",
    "build_agent",
    "build_agent_for",
    "registration_loc",
]
