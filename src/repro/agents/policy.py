"""The grounded diagnostic policy: belief tracking and next-action planning.

This is the "brain" behind :class:`~repro.agents.llm.SimulatedLLM`.  It may
only use information that actually flowed through the ACI — it parses
observations (log lines, kubectl tables, helm output) into a
:class:`Belief`, infers a :class:`Diagnosis`, and plans the next action for
the current task.  Capability limits (misreading a signature, picking a
wrong mitigation) are applied *on top* by the model profile, so weaker
models degrade realistically rather than by coin-flip answers.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from repro.simcore import RngStream

#: fault keys the policy can diagnose, with their RCA ground-truth mapping
RCA_MAP: dict[str, tuple[str, str]] = {
    "misconfig_k8s": ("virtualization", "misconfiguration"),
    "scale_pod_zero": ("virtualization", "operation_error"),
    "assign_to_non_existent_node": ("virtualization", "misconfiguration"),
    "auth_missing": ("virtualization", "misconfiguration"),
    "revoke_auth": ("application", "operation_error"),
    "user_unregistered": ("application", "operation_error"),
    "buggy_app_image": ("application", "code_bug"),
    "network_loss": ("network", "network_loss"),
    "pod_failure": ("virtualization", "pod_failure"),
}


@dataclass
class Diagnosis:
    """The policy's current best root-cause hypothesis."""

    fault_key: str
    target: str
    confidence: float = 0.5
    evidence: str = ""


@dataclass
class Belief:
    """Everything the agent has learned through the ACI so far."""

    namespace: str = ""
    app_services: list[str] = field(default_factory=list)
    release_name: str = ""
    error_counts: dict[str, int] = field(default_factory=dict)
    #: callee -> signature seen on a failed RPC edge
    edge_signatures: dict[str, str] = field(default_factory=dict)
    trace_error_services: list[str] = field(default_factory=list)
    endpoints_empty: set[str] = field(default_factory=set)
    pods_status: dict[str, str] = field(default_factory=dict)      # svc -> status
    deployments_desired: dict[str, int] = field(default_factory=dict)
    deployments_ready: dict[str, int] = field(default_factory=dict)
    deploy_ports: dict[str, int] = field(default_factory=dict)
    deploy_images: dict[str, str] = field(default_factory=dict)
    mongo_pods: dict[str, str] = field(default_factory=dict)       # svc -> pod
    secret_creds: dict[str, tuple[str, str]] = field(default_factory=dict)
    helm_missing_creds: set[str] = field(default_factory=set)
    helm_values_seen: bool = False
    service_target_ports: dict[str, int] = field(default_factory=dict)
    checked_logs: bool = False
    checked_metrics: bool = False
    checked_traces: bool = False
    checked_pods: bool = False
    checked_deployments: bool = False
    checked_endpoints: bool = False
    metrics_errors: dict[str, float] = field(default_factory=dict)
    diagnosis: Optional[Diagnosis] = None
    mitigation_done: list[str] = field(default_factory=list)
    #: targets a fix was already issued for (never re-fixed — one shot each)
    fixed_targets: set[str] = field(default_factory=set)
    #: metrics need re-pulling before trusting them post-fix
    metrics_stale: bool = False
    #: consecutive fruitless verification rounds (bounded re-investigation)
    verify_rounds: int = 0
    last_error_observation: str = ""

    def any_fault_evidence(self) -> bool:
        return bool(
            self.error_counts or self.edge_signatures
            or any(s in ("CrashLoopBackOff", "Pending")
                   for s in self.pods_status.values())
            or any(v > 0.05 for v in self.metrics_errors.values())
        )


# ---------------------------------------------------------------------------
# observation parsing
# ---------------------------------------------------------------------------
_ERR_COUNT_RE = re.compile(r"^\s{2}([\w-]+): (\d+) ERROR lines", re.M)
_EDGE_RE = re.compile(r"failed to call ([\w-]+)\.[\w-]+: (.+)")
_POD_STATUSES = ("Running", "Pending", "CrashLoopBackOff", "Terminating",
                 "Failed", "Succeeded", "Unknown", "Completed")
_POD_ROW_RE = re.compile(
    r"^([\w-]+)\s+\d+/\d+\s+(" + "|".join(_POD_STATUSES) + r")\s", re.M)
_DEPLOY_ROW_RE = re.compile(r"^([\w-]+)\s+(\d+)/(\d+)\s+\d+\s+\d+\s", re.M)
_EP_EMPTY_RE = re.compile(r"^([\w-]+)\s+<none>", re.M)
_EP_ROW_RE = re.compile(r"^([\w-]+)\s+\d+\.\d+\.\d+\.\d+:", re.M)
_SVC_TP_RE = re.compile(r"Name:\s+([\w-]+)[\s\S]*?TargetPort:\s+(\d+)/TCP")
_DEPLOY_PORT_RE = re.compile(
    r"Container ([\w-]+): image=([^\s,]+), ports=\[(\d+)\]")
_SECRET_NAME_RE = re.compile(r"Name:\s+([\w-]+)-credentials")
_SECRET_USER_RE = re.compile(r"username:\s+(\S+)")
_SECRET_PASS_RE = re.compile(r"password:\s+(\S+)")
_HELM_NONE_RE = re.compile(r"'([\w-]+)': None")
_TRACE_ERR_RE = re.compile(r"^\s{2}([\w-]+): (\d+)% of spans errored", re.M)
_METRIC_ERR_RE = re.compile(r"^\s{2}([\w-]+): cpu=\S+ req_rate=\S+ err_rate=(\d+\.\d+)/s", re.M)
_PANIC_RE = re.compile(r"\[([\w-]+)\] panic: (.+)")

_SIGNATURES = (
    ("not authorized on", "revoke_auth"),
    ("Authentication failed", "auth_missing"),
    ("Could not find user", "user_unregistered"),
    ("panic: failed to initialize connection pool", "buggy_app_image"),
    ("connection refused", "connectivity"),
    ("packet dropped", "network_loss"),
    ("connection to", "network_loss"),
)


def _owner_of(pod_name: str) -> str:
    """``user-service-1abcd2efg-xyz12`` → ``user-service``."""
    parts = pod_name.rsplit("-", 2)
    return parts[0] if len(parts) == 3 else pod_name


class DiagnosticPolicy:
    """Parses observations, maintains the belief, plans the next action.

    Parameters
    ----------
    task_type:
        ``detection`` / ``localization`` / ``analysis`` / ``mitigation``.
    rng:
        Stream used for tie-breaking flail actions (so runs reproduce).
    use_traces:
        Whether the planner will ever call ``get_traces`` (FLASH does not —
        Figure 6).
    """

    def __init__(self, task_type: str, rng: RngStream,
                 use_traces: bool = True) -> None:
        self.task_type = task_type
        self.rng = rng
        self.use_traces = use_traces
        self.belief = Belief()
        #: True when the most recent planned action was a mitigation fix
        #: (the profile's mitigation_skill gate keys on this)
        self.last_plan_was_fix = False

    # ------------------------------------------------------------------
    # context ingestion
    # ------------------------------------------------------------------
    def ingest_context(self, prob_desc: str) -> None:
        m = re.search(r'namespace\s+"([^"]+)"', prob_desc)
        if m:
            self.belief.namespace = m.group(1)
        m = re.search(r"Services: ([^.]+)\.", prob_desc)
        if m:
            self.belief.app_services = [s.strip() for s in m.group(1).split(",")]

    def ingest_observation(self, obs: str) -> None:
        b = self.belief
        if obs.startswith("Error:") or obs.startswith("PolicyError:"):
            b.last_error_observation = obs
            return
        b.last_error_observation = ""
        for svc, n in _ERR_COUNT_RE.findall(obs):
            b.error_counts[svc] = max(b.error_counts.get(svc, 0), int(n))
        for callee, detail in _EDGE_RE.findall(obs):
            sig = self._classify(detail)
            # connection-refused details name the actually unreachable
            # service, which may be deeper than the direct callee
            m_inner = re.search(r'service "([\w-]+)" port', detail)
            if m_inner:
                callee = m_inner.group(1)
            elif sig in ("revoke_auth", "auth_missing", "user_unregistered"):
                # auth errors carry the database name — map it back to the
                # mongodb service even when observed on an upstream edge
                m_db = re.search(r'([\w-]+?)-db', detail)
                if m_db:
                    short = m_db.group(1).split()[-1].strip('"')
                    mongos = [s for s in b.app_services
                              if "mongo" in s and short in s]
                    if mongos:
                        callee = mongos[0]
            b.edge_signatures.setdefault(callee, sig)
        for svc, detail in _PANIC_RE.findall(obs):
            b.edge_signatures.setdefault(svc, "buggy_app_image")
        for pod, status in _POD_ROW_RE.findall(obs):
            svc = _owner_of(pod)
            b.pods_status[svc] = status
            if svc.startswith("mongodb") or svc.endswith("mongodb"):
                b.mongo_pods[svc] = pod
            b.checked_pods = True
        if "CrashLoopBackOff" in obs:
            for m in re.finditer(r"^([\w-]+)\s+\d+/\d+\s+CrashLoopBackOff", obs,
                                 re.M):
                b.pods_status[_owner_of(m.group(1))] = "CrashLoopBackOff"
        for name, ready, desired in _DEPLOY_ROW_RE.findall(obs):
            b.deployments_ready[name] = int(ready)
            b.deployments_desired[name] = int(desired)
            b.checked_deployments = True
        if "ENDPOINTS" in obs:
            b.checked_endpoints = True
            for svc in _EP_EMPTY_RE.findall(obs):
                b.endpoints_empty.add(svc)
            for svc in _EP_ROW_RE.findall(obs):
                b.endpoints_empty.discard(svc)
        m = _SVC_TP_RE.search(obs)
        if m:
            b.service_target_ports[m.group(1)] = int(m.group(2))
        for cname, image, port in _DEPLOY_PORT_RE.findall(obs):
            b.deploy_ports[cname] = int(port)
            b.deploy_images[cname] = image
        m = _SECRET_NAME_RE.search(obs)
        if m:
            mu = _SECRET_USER_RE.search(obs)
            mp = _SECRET_PASS_RE.search(obs)
            if mu and mp:
                b.secret_creds[m.group(1)] = (mu.group(1), mp.group(1))
        if "USER-SUPPLIED VALUES" in obs:
            b.helm_values_seen = True
            for svc in _HELM_NONE_RE.findall(obs):
                b.helm_missing_creds.add(svc)
            for m2 in re.finditer(
                    r"'([\w-]+)': \{'username': '([^']+)', 'password': '([^']+)'\}",
                    obs):
                b.secret_creds[m2.group(1)] = (m2.group(2), m2.group(3))
        if "REVISION:" in obs and "upgraded" in obs:
            b.mitigation_done.append("helm_upgrade")
        if obs.startswith("NAME\tNAMESPACE\tREVISION"):
            for m3 in re.finditer(r"^([\w-]+)\t[\w-]+\t\d+\t", obs, re.M):
                b.release_name = m3.group(1)
        for svc, pct in _TRACE_ERR_RE.findall(obs):
            if svc not in b.trace_error_services:
                b.trace_error_services.append(svc)
            b.checked_traces = True
        for svc, rate in _METRIC_ERR_RE.findall(obs):
            b.metrics_errors[svc] = float(rate)
            b.checked_metrics = True
        if "ERROR lines per service" in obs or "No ERROR-level log lines" in obs \
                or "Last lines of" in obs:
            b.checked_logs = True
        if "Latest snapshot" in obs:
            b.checked_metrics = True
        if "No error spans" in obs:
            b.checked_traces = True
        if obs.startswith("NAME") and "READY" in obs and "STATUS" in obs:
            b.checked_pods = True
        self._update_diagnosis()

    @staticmethod
    def _classify(detail: str) -> str:
        for needle, sig in _SIGNATURES:
            if needle in detail:
                return sig
        return "unknown"

    # ------------------------------------------------------------------
    # diagnosis
    # ------------------------------------------------------------------
    def _update_diagnosis(self) -> None:
        b = self.belief
        # direct application-level signatures (skip already-fixed targets so
        # a second concurrent fault can take over the diagnosis)
        for callee, sig in b.edge_signatures.items():
            if callee in b.fixed_targets:
                continue
            if sig in ("revoke_auth", "auth_missing", "user_unregistered",
                       "buggy_app_image"):
                # auth_failed may be a helm misconfig: confirmed via values
                if sig == "auth_missing" and callee not in b.helm_missing_creds \
                        and not b.helm_values_seen:
                    b.diagnosis = Diagnosis(sig, callee, 0.6,
                                            "auth handshake failures")
                else:
                    b.diagnosis = Diagnosis(sig, callee, 0.9,
                                            f"log signature on {callee}")
                return
        for callee, sig in b.edge_signatures.items():
            if callee in b.fixed_targets:
                continue
            if sig == "network_loss":
                b.diagnosis = Diagnosis("network_loss", callee, 0.7,
                                        "packet drops on edge")
                return
        # connectivity needs k8s-state disambiguation
        for callee, sig in b.edge_signatures.items():
            if callee in b.fixed_targets or sig != "connectivity":
                continue
            if b.deployments_desired.get(callee) == 0:
                b.diagnosis = Diagnosis("scale_pod_zero", callee, 0.9,
                                        "deployment scaled to 0")
            elif b.pods_status.get(callee) == "Pending":
                b.diagnosis = Diagnosis("assign_to_non_existent_node", callee,
                                        0.85, "pods Pending")
            elif b.pods_status.get(callee) == "CrashLoopBackOff":
                b.diagnosis = Diagnosis("pod_failure", callee, 0.85,
                                        "crash-looping pods")
            elif callee in b.endpoints_empty and \
                    b.pods_status.get(callee) == "Running":
                b.diagnosis = Diagnosis("misconfig_k8s", callee, 0.9,
                                        "endpoints empty while pods run")
            else:
                b.diagnosis = Diagnosis("connectivity", callee, 0.4,
                                        "connection refused, cause unknown")
            return
        # no edges: pod-level symptoms alone
        for svc, status in b.pods_status.items():
            if svc in b.fixed_targets:
                continue
            if status == "CrashLoopBackOff":
                b.diagnosis = Diagnosis("pod_failure", svc, 0.7, "crash loop")
                return
            if status == "Pending":
                b.diagnosis = Diagnosis("assign_to_non_existent_node", svc, 0.6,
                                        "pending pods")
                return

    # ------------------------------------------------------------------
    # localization ranking
    # ------------------------------------------------------------------
    def suspects(self) -> list[str]:
        """Ranked candidate faulty services (most suspect first)."""
        b = self.belief
        ranked: list[str] = []
        if b.diagnosis and b.diagnosis.fault_key != "connectivity":
            ranked.append(b.diagnosis.target)
        # deepest callees with signatures next
        ranked.extend(c for c in b.edge_signatures if c not in ranked)
        # trace-derived error services (already deepest-first)
        ranked.extend(s for s in b.trace_error_services if s not in ranked)
        # unhealthy pods
        ranked.extend(
            s for s, st in b.pods_status.items()
            if st in ("CrashLoopBackOff", "Pending") and s not in ranked
        )
        # finally log error counts (shallower services)
        for svc, _ in sorted(b.error_counts.items(), key=lambda kv: -kv[1]):
            if svc not in ranked:
                ranked.append(svc)
        return ranked

    def decoy_candidates(self, exclude: Optional[str] = None) -> list[str]:
        """Plausible-but-wrong services: the symptom chain above the cause,
        then the rest of the app (frontends first — the classic bad guess)."""
        b = self.belief
        out: list[str] = []
        for svc, _ in sorted(b.error_counts.items(), key=lambda kv: -kv[1]):
            if svc != exclude and svc not in out:
                out.append(svc)
        fronts = [s for s in b.app_services
                  if "frontend" in s or "nginx" in s or "web" in s]
        for svc in fronts + b.app_services:
            if svc != exclude and svc not in out:
                out.append(svc)
        return out

    def rca_answer(self) -> dict[str, str]:
        b = self.belief
        if b.diagnosis and b.diagnosis.fault_key in RCA_MAP:
            level, ftype = RCA_MAP[b.diagnosis.fault_key]
            return {"system_level": level, "fault_type": ftype}
        return {"system_level": "application", "fault_type": "misconfiguration"}

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def next_action(self) -> str:
        """The ideal next action for the current task given the belief."""
        b = self.belief
        ns = b.namespace or "default"
        self.last_plan_was_fix = False
        if self.task_type == "detection":
            return self._plan_detection(ns)
        if self.task_type == "localization":
            return self._plan_localization(ns)
        if self.task_type == "analysis":
            return self._plan_analysis(ns)
        return self._plan_mitigation(ns)

    # -- shared investigation steps ------------------------------------
    def _investigate(self, ns: str) -> Optional[str]:
        """Generic evidence-gathering sequence; None when enough is known."""
        b = self.belief
        if not b.checked_logs:
            return f'get_logs("{ns}", "all")'
        if b.error_counts and not b.edge_signatures:
            top = max(b.error_counts, key=b.error_counts.get)
            return f'get_logs("{ns}", "{top}")'
        sig = b.diagnosis.fault_key if b.diagnosis else ""
        if sig == "connectivity" or (b.edge_signatures and any(
                s == "connectivity" for s in b.edge_signatures.values())):
            if not b.checked_deployments:
                return f'exec_shell("kubectl get deployments -n {ns}")'
            if not b.checked_pods:
                return f'exec_shell("kubectl get pods -n {ns}")'
            if not b.checked_endpoints:
                return f'exec_shell("kubectl get endpoints -n {ns}")'
        if sig == "auth_missing" and not b.helm_values_seen \
                and b.diagnosis and b.diagnosis.confidence < 0.8:
            return 'exec_shell("helm list")' if not b.release_name else \
                f'exec_shell("helm get values {b.release_name}")'
        if not b.error_counts and not b.checked_pods:
            return f'exec_shell("kubectl get pods -n {ns}")'
        if not b.error_counts and not b.checked_metrics:
            return f'get_metrics("{ns}", 5)'
        if self.use_traces and not b.checked_traces and not b.diagnosis:
            return f'get_traces("{ns}", 5)'
        return None

    def _plan_detection(self, ns: str) -> str:
        b = self.belief
        if b.checked_logs and b.any_fault_evidence():
            return 'submit("yes")'
        if b.checked_logs and b.checked_pods and b.checked_metrics:
            return 'submit("no")'
        step = self._investigate(ns)
        if step:
            return step
        return 'submit("yes")' if b.any_fault_evidence() else 'submit("no")'

    def _plan_localization(self, ns: str) -> str:
        b = self.belief
        if b.diagnosis and b.diagnosis.confidence >= 0.7:
            return f"submit({self.suspects()[:3]!r})"
        step = self._investigate(ns)
        if step:
            return step
        suspects = self.suspects()[:3]
        if suspects:
            return f"submit({suspects!r})"
        return 'submit([])'

    def _plan_analysis(self, ns: str) -> str:
        b = self.belief
        if b.diagnosis and b.diagnosis.fault_key in RCA_MAP \
                and b.diagnosis.confidence >= 0.8:
            return f"submit({self.rca_answer()!r})"
        step = self._investigate(ns)
        if step:
            return step
        return f"submit({self.rca_answer()!r})"

    # -- mitigation -----------------------------------------------------
    MAX_VERIFY_ROUNDS = 5

    def _mark_fixed(self, target: str) -> None:
        """Bookkeeping after issuing a fix: forget the target's stale
        evidence so a *second* concurrent fault can surface (§2.4.3's
        multi-fault problems), and force fresh telemetry before submit."""
        b = self.belief
        self.last_plan_was_fix = True
        b.fixed_targets.add(target)
        b.mitigation_done.append("fix")
        b.edge_signatures.pop(target, None)
        b.error_counts.clear()
        b.diagnosis = None
        b.metrics_stale = True
        b.checked_deployments = False
        b.checked_pods = False
        b.checked_endpoints = False

    def _plan_verification(self, ns: str) -> str:
        """After a fix: confirm error rates died down, or chase what's left.

        The first metric pull after a fix can still reflect the pre-fix
        scrape window, so the plan re-polls metrics a couple of times before
        concluding another fault remains and reaching for logs.
        """
        b = self.belief
        if b.metrics_stale:
            b.metrics_stale = False
            return f'get_metrics("{ns}", 1)'
        still_bad = [s for s, v in b.metrics_errors.items()
                     if v > 0.2 and s not in b.fixed_targets]
        if not still_bad:
            return "submit()"
        b.verify_rounds += 1
        if b.verify_rounds <= 2:
            return f'get_metrics("{ns}", 1)'   # wait out the scrape lag
        if b.verify_rounds >= self.MAX_VERIFY_ROUNDS:
            return "submit()"  # out of ideas — let the evaluator decide
        top = max(still_bad, key=lambda s: b.metrics_errors[s])
        return f'get_logs("{ns}", "{top}")'

    def _plan_mitigation(self, ns: str) -> str:
        b = self.belief
        d = b.diagnosis
        actionable = (d is not None and d.fault_key in RCA_MAP
                      and d.target not in b.fixed_targets)
        if not actionable:
            if b.fixed_targets:
                # a connectivity hypothesis still needs k8s-state
                # disambiguation before it becomes actionable
                if d is not None and d.fault_key == "connectivity":
                    step = self._investigate(ns)
                    if step:
                        return step
                return self._plan_verification(ns)
            step = self._investigate(ns)
            if step:
                return step
            return "submit()"  # nothing actionable found
        # dead-end guard: if fetching this target's secret already failed,
        # stop chasing the hypothesis instead of looping on NotFound
        if b.last_error_observation and \
                f"{d.target}-credentials" in b.last_error_observation:
            b.fixed_targets.add(d.target)
            b.diagnosis = None
            return self._plan_verification(ns)
        key = d.fault_key
        if key == "scale_pod_zero":
            self._mark_fixed(d.target)
            return (f'exec_shell("kubectl scale deployment {d.target} '
                    f'--replicas=1 -n {ns}")')
        if key == "assign_to_non_existent_node":
            self._mark_fixed(d.target)
            patch = '{\\"spec\\":{\\"template\\":{\\"spec\\":{\\"nodeName\\":\\"\\"}}}}'
            return (f"exec_shell(\"kubectl patch deployment {d.target} -n {ns} "
                    f"-p '{patch}'\")")
        if key == "misconfig_k8s":
            port = b.deploy_ports.get(d.target)
            if port is None:
                return (f'exec_shell("kubectl describe deployment {d.target} '
                        f'-n {ns}")')
            self._mark_fixed(d.target)
            patch = ('{\\"spec\\":{\\"ports\\":[{\\"targetPort\\":%d}]}}' % port)
            return (f"exec_shell(\"kubectl patch service {d.target} -n {ns} "
                    f"-p '{patch}'\")")
        if key == "revoke_auth":
            pod = b.mongo_pods.get(d.target)
            if pod is None:
                return f'exec_shell("kubectl get pods -n {ns}")'
            self._mark_fixed(d.target)
            return (f"exec_shell(\"kubectl exec {pod} -n {ns} -- mongo --eval "
                    f"\\\"db.grantRolesToUser('admin', ['readWrite','dbAdmin'])\\\"\")")
        if key == "user_unregistered":
            creds = b.secret_creds.get(d.target)
            if creds is None:
                return (f'exec_shell("kubectl get secret {d.target}-credentials '
                        f'-n {ns}")')
            pod = b.mongo_pods.get(d.target)
            if pod is None:
                return f'exec_shell("kubectl get pods -n {ns}")'
            user, pw = creds
            self._mark_fixed(d.target)
            return (f"exec_shell(\"kubectl exec {pod} -n {ns} -- mongo --eval "
                    f"\\\"db.createUser({{user: '{user}', pwd: '{pw}', "
                    f"roles: ['readWrite','dbAdmin']}})\\\"\")")
        if key == "buggy_app_image":
            image = b.deploy_images.get(d.target)
            if image is None:
                return (f'exec_shell("kubectl describe deployment {d.target} '
                        f'-n {ns}")')
            fixed = image.replace(":buggy-v2", ":latest")
            self._mark_fixed(d.target)
            return (f'exec_shell("kubectl set image deployment/{d.target} '
                    f'{d.target}={fixed} -n {ns}")')
        if key == "auth_missing":
            if not b.release_name:
                return 'exec_shell("helm list")'
            creds = b.secret_creds.get(d.target)
            if creds is None:
                return (f'exec_shell("kubectl get secret {d.target}-credentials '
                        f'-n {ns}")')
            user, pw = creds
            self._mark_fixed(d.target)
            return (f'exec_shell("helm upgrade {b.release_name} '
                    f'--set mongo_credentials.{d.target}.username={user} '
                    f'--set mongo_credentials.{d.target}.password={pw}")')
        # symptomatic faults (network loss / pod failure) have no functional
        # root cause to fix — restart pods as a best effort
        self._mark_fixed(d.target)
        return f'exec_shell("kubectl rollout restart deployment {d.target} -n {ns}")'

    # ------------------------------------------------------------------
    def flail_action(self) -> str:
        """A plausible-but-unhelpful action (weak models under uncertainty)."""
        ns = self.belief.namespace or "default"
        options = [
            f'get_logs("{ns}", "all")',
            f'get_metrics("{ns}", 5)',
            f'exec_shell("kubectl get pods -n {ns}")',
            f'exec_shell("kubectl get services -n {ns}")',
        ]
        if self.use_traces:
            options.append(f'get_traces("{ns}", 5)')
        return self.rng.choice(options)
