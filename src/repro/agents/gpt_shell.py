"""GPT-W-SHELL: a naive baseline — an LLM with a secure shell (§3.1).

Two registered variants share this scaffold: ``gpt-4-w-shell`` and
``gpt-3.5-w-shell``.  The scaffold does nothing beyond prompting the model
with the problem context and forwarding its raw action strings.
"""

from __future__ import annotations

from repro.agents.base import AgentBase


class GptWithShellAgent(AgentBase):
    """The GPT-w-shell baseline agent (model chosen by profile)."""

    profile_name = "gpt-4-w-shell"
