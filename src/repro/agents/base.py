"""Base agent scaffold: prompt assembly, stats accounting, the ACI contract."""

from __future__ import annotations

from typing import Optional

from repro.agents.llm import LLMResponse, ModelProfile, PROFILES, SimulatedLLM


class AgentBase:
    """Common scaffold for all registered agents.

    The Orchestrator's only requirement (§2.2.2) is
    ``async def get_action(state: str) -> str``; everything else here is the
    agent's own business: building the system prompt from the problem
    context, calling its model, and keeping token/latency stats that the
    Orchestrator may collect via :meth:`consume_stats`.

    Parameters
    ----------
    prob_desc / instructs / apis:
        The context returned by ``orchestrator.init_problem``.
    profile:
        Model profile name (see :data:`~repro.agents.llm.PROFILES`) or a
        :class:`ModelProfile`.
    task_type:
        The task this problem instance poses (parsed from the pid by the
        registry helper when using :func:`repro.agents.build_agent`).
    """

    profile_name: str = "gpt-4-w-shell"

    def __init__(self, prob_desc: str, instructs: str, apis: str,
                 task_type: str, profile: Optional[str | ModelProfile] = None,
                 seed: int = 0) -> None:
        resolved = profile or self.profile_name
        if isinstance(resolved, str):
            resolved = PROFILES[resolved]
        self.profile: ModelProfile = resolved
        self.prompt = self.set_prompt(prob_desc, instructs, apis)
        self.llm = SimulatedLLM(self.profile, task_type, prob_desc, seed=seed)
        self._pending_stats: tuple[int, int, float] = (0, 0, 0.0)
        self.history: list[tuple[str, str]] = []  # (state, action)

    # -- prompt -----------------------------------------------------------
    def set_prompt(self, prob_desc: str, instructs: str, apis: str) -> str:
        return (
            f"{prob_desc}\n\n{instructs}\n\nAvailable APIs:\n{apis}\n"
        )

    # -- the Orchestrator contract ---------------------------------------
    async def get_action(self, state: str) -> str:
        response = self.step(state)
        self._pending_stats = (
            self._pending_stats[0] + response.input_tokens,
            self._pending_stats[1] + response.output_tokens,
            self._pending_stats[2] + response.latency_s,
        )
        action = self.render_action(response)
        self.history.append((state, action))
        return action

    def consume_stats(self) -> tuple[int, int, float]:
        """(input_tokens, output_tokens, latency_s) since the last call."""
        stats = self._pending_stats
        self._pending_stats = (0, 0, 0.0)
        return stats

    # -- subclass hooks -------------------------------------------------------
    def step(self, state: str) -> LLMResponse:
        """One model call; subclasses may add extra calls (e.g. hindsight)."""
        return self.llm.decide(state)

    def render_action(self, response: LLMResponse) -> str:
        """How the model output is surfaced to the Orchestrator."""
        return response.text
