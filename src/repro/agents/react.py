"""REACT: interleaved reasoning and acting (Yao et al., 2023).

Each step emits a *Thought* (visible reasoning about the latest
observation) followed by an *Action* (the ACI call).  The thought tokens
are what make ReAct's output-token cost the highest of the four agents
(Table 4), and its explicit reflection on error observations is what lets
it recover from invalid API usage (§3.6.3's example).
"""

from __future__ import annotations

from repro.agents.base import AgentBase
from repro.agents.llm import LLMResponse


class ReactAgent(AgentBase):
    """ReAct scaffold over the model profile."""

    profile_name = "react"

    def render_action(self, response: LLMResponse) -> str:
        thought = self._thought(response.text)
        return f"Thought: {thought}\nAction: {response.text}"

    def _thought(self, action: str) -> str:
        """A faithful one-line rationale for the chosen action."""
        belief = self.llm.policy.belief
        if self.history and self.history[-1][0].startswith("Error:"):
            return ("The previous call failed; I should check the existing "
                    "services and correct the call.")
        if action.startswith("get_logs"):
            return "I should inspect recent logs for error signatures."
        if action.startswith("get_metrics"):
            return "Metrics may reveal resource anomalies or error rates."
        if action.startswith("get_traces"):
            return "Traces will show which downstream call is failing."
        if action.startswith("exec_shell"):
            return "I will query the cluster state to narrow the cause."
        if action.startswith("submit"):
            if belief.diagnosis is not None:
                return (f"Evidence points at {belief.diagnosis.target} "
                        f"({belief.diagnosis.evidence}); submitting.")
            return "I have gathered enough evidence; submitting my answer."
        return "Continuing the investigation."
