"""FLASH (simplified, per §3.1): status-aware workflow automation with
hindsight generation.

The paper's FLASH was not public, so — like the authors — we implement a
simplified version that *retrospectively generates insights after each
step* and feeds them back into the next prompt.  The extra hindsight model
call is why FLASH is the slowest agent per problem (Table 3) while taking
fewer, better-targeted steps.
"""

from __future__ import annotations

from repro.agents.base import AgentBase
from repro.agents.llm import LLMResponse


class FlashAgent(AgentBase):
    """Simplified FLASH: plan → act → hindsight loop."""

    profile_name = "flash"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.hindsight: list[str] = []

    def step(self, state: str) -> LLMResponse:
        insight = self._generate_hindsight(state)
        if insight:
            self.hindsight.append(insight)
        response = self.llm.decide(state)
        # The hindsight pass is a second model call: roughly double the
        # input cost and latency of a plain step.
        extra_in = self.profile.in_tokens_base // 2 + len(state) // 8
        extra_latency = max(
            self.llm.rng.normal(self.profile.latency_mean * 0.6,
                                self.profile.latency_sigma * 0.5), 0.2)
        return LLMResponse(
            text=response.text,
            input_tokens=response.input_tokens + extra_in,
            output_tokens=response.output_tokens + 8,
            latency_s=response.latency_s + extra_latency,
        )

    def _generate_hindsight(self, state: str) -> str:
        """Summarize what the last observation taught us (status monitoring)."""
        if not self.history:
            return ""
        if state.startswith("Error:"):
            return "hindsight: the previous action was invalid; avoid repeating it."
        b = self.llm.policy.belief
        if b.diagnosis is not None:
            return (f"hindsight: suspicion on {b.diagnosis.target} "
                    f"({b.diagnosis.fault_key}).")
        if b.error_counts:
            top = max(b.error_counts, key=b.error_counts.get)
            return f"hindsight: {top} shows the most errors so far."
        return "hindsight: no anomaly surfaced yet; broaden the search."
