#!/usr/bin/env python
"""Generate the checked-in docs that mirror code-owned registries.

Two files are generated (and committed, so readers need no tooling):

* ``docs/api/actions.md`` — the Agent-Cloud Interface reference, rendered
  from the ``@action`` registry exactly as sessions render it for agents
  (``registry_for(task).render_docs()`` per task type);
* ``docs/scenarios.md`` — the scenario-problem catalog behind
  ``repro.problems.scenario_pids()``: pid, hosted app(s), fidelity/rate,
  trigger kinds and the full fault timeline per scenario, plus the
  procedural generator's template space (axes × values, with sampled
  example recipes from the documented seed-0 pool).

``--check`` regenerates in memory and exits non-zero if the committed
files are stale — the CI ``docs-check`` step runs exactly that, so the
docs can never drift from the registries they document.

Usage::

    PYTHONPATH=src python scripts/gen_docs.py [--check]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

from repro.core.aci import registry_for  # noqa: E402
from repro.core.problem import Problem  # noqa: E402
from repro.faults.triggers import (  # noqa: E402
    AfterEvent,
    AtTime,
    MetricTrigger,
)
from repro.problems.scenarios import (  # noqa: E402
    MultiAppScheduledProblem,
    SCENARIO_FACTORIES,
    ScheduledFaultProblem,
)

#: task surfaces rendered in the API reference, in presentation order
TASKS = ("detection", "localization", "analysis", "mitigation")

GENERATED_BANNER = (
    "<!-- GENERATED FILE — do not edit by hand.\n"
    "     Regenerate with: PYTHONPATH=src python scripts/gen_docs.py\n"
    "     CI's docs-check step fails when this file is stale. -->\n")


def render_actions_md() -> str:
    """The ACI reference, one section per task-type action surface."""
    out = [
        GENERATED_BANNER,
        "# Agent-Cloud Interface — action reference",
        "",
        "Every session shares these docs with the agent as the API part of",
        "its context `C` (auto-rendered from the `@action` registry by",
        "`registry_for(task).render_docs()`).  Actions marked for specific",
        "task types only appear on those tasks' surfaces.",
        "",
    ]
    for task in TASKS:
        registry = registry_for(task)
        names = ", ".join(f"`{n}`" for n in registry.names())
        out.append(f"## {task} surface")
        out.append("")
        out.append(f"Actions: {names}")
        out.append("")
        out.append("```text")
        out.append(registry.render_docs())
        out.append("```")
        out.append("")
    return "\n".join(out)


def _trigger_kind(trigger) -> str:
    if isinstance(trigger, AtTime):
        return "time"
    if isinstance(trigger, MetricTrigger):
        return "metric"
    if isinstance(trigger, AfterEvent):
        return "chained"
    return type(trigger).__name__


def _scenario_rows() -> list[dict]:
    rows = []
    for pid, factory in SCENARIO_FACTORIES.items():
        prob: Problem = factory()
        if isinstance(prob, MultiAppScheduledProblem):
            specs = prob.app_specs()
            apps = " + ".join(s.app_cls.__name__ for s in specs)
        else:
            apps = prob.app_name
        schedule = prob.build_schedule() \
            if isinstance(prob, ScheduledFaultProblem) else None
        kinds: list[str] = []
        timeline: list[str] = []
        if schedule is not None:
            for entry in schedule.entries:
                kind = _trigger_kind(entry.trigger)
                if entry.repeat != 1:
                    kind = "repeating"
                if kind not in kinds:
                    kinds.append(kind)
                times = "" if entry.repeat == 1 else (
                    " ×∞" if entry.repeat == 0 else f" ×{entry.repeat}")
                timeline.append(
                    f"{entry.trigger.describe()}{times}: {entry.describe()}")
        rows.append({
            "pid": pid,
            "task": prob.task_type,
            "apps": apps,
            "fidelity": prob.fidelity,
            "rate": prob.workload_rate,
            "kinds": "/".join(kinds) or "—",
            "timeline": timeline,
        })
    return rows


def _render_template_space() -> list[str]:
    """The procedural generator's axes, plus sampled seed-0 recipes."""
    from repro.problems import ScenarioGenerator, template_space
    from repro.problems.generator import SHAPES, describe_timeline

    out = [
        "## Procedural template space",
        "",
        "`repro.problems.generator.ScenarioGenerator` composes unlimited",
        "further scenarios from these axes (`generated_pool(n, seed)` /",
        "`scenario_pids(n=..., seed=...)`).  Every generated problem is",
        "deterministic in `(seed, index)`, carries an auto-derived grading",
        "spec, and is certified by the property suite in",
        "`tests/problems/test_generator.py` — arm-time validity, end-to-end",
        "sessions, fidelity-tier agreement and byte-identical replay.",
        "",
        "| axis | values |",
        "|---|---|",
    ]
    for axis, values in template_space().items():
        rendered = ", ".join(f"`{v}`" for v in values)
        out.append(f"| {axis} | {rendered} |")
    out.extend([
        "",
        "### Sampled recipes (seed 0)",
        "",
        "One example per trigger shape, drawn from the documented",
        "`generated_pool(200, seed=0)`:",
        "",
    ])
    gen = ScenarioGenerator(0)
    for shape in SHAPES:
        index = next(i for i in range(len(SHAPES) * 3)
                     if gen.spec(i).shape == shape)
        spec = gen.spec(index)
        apps = " + ".join([spec.app_name] + [n[0] for n in spec.neighbors])
        out.append(f"#### `{spec.pid}`")
        out.append("")
        out.append(f"- task {spec.task} · apps {apps} · {spec.fidelity} · "
                   f"{spec.policy} policy @ {spec.rate:g} rps")
        timeline = describe_timeline(spec)
        if timeline:
            out.extend(f"- {line}" for line in timeline)
        else:
            out.append("- (quiet: no scheduled timeline — detection "
                       "ground truth is \"no\")")
        out.append("")
    return out


def render_scenarios_md() -> str:
    """The scenario catalog: summary table plus per-scenario timelines."""
    rows = _scenario_rows()
    out = [
        GENERATED_BANNER,
        "# Scenario catalog",
        "",
        "Scheduled-fault scenario problems registered behind",
        "`repro.problems.scenario_pids()` — additive to (and excluded",
        "from) the paper-faithful 48-problem benchmark.  Each runs",
        "end-to-end via `Orchestrator.create_session(pid)`.",
        "",
        "| pid | task | app(s) | fidelity | rate (rps) | trigger kinds |",
        "|---|---|---|---|---|---|",
    ]
    for r in rows:
        out.append(
            f"| `{r['pid']}` | {r['task']} | {r['apps']} | {r['fidelity']} "
            f"| {r['rate']:g} | {r['kinds']} |")
    out.append("")
    out.append("## Timelines")
    out.append("")
    out.append("Entries as armed (arm time = end of the 30 s warmup);")
    out.append("`@namespace` marks the app an entry acts on, `×∞`/`×N` a")
    out.append("repeating (re-arming) metric entry.")
    out.append("")
    for r in rows:
        out.append(f"### `{r['pid']}`")
        out.append("")
        if r["timeline"]:
            out.extend(f"- {line}" for line in r["timeline"])
        else:
            out.append("- (no scheduled timeline)")
        out.append("")
    out.extend(_render_template_space())
    return "\n".join(out)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="verify the committed files are current "
                             "instead of writing them")
    args = parser.parse_args()

    targets = {
        REPO / "docs" / "api" / "actions.md": render_actions_md(),
        REPO / "docs" / "scenarios.md": render_scenarios_md(),
    }
    stale = []
    for path, content in targets.items():
        if args.check:
            on_disk = path.read_text() if path.exists() else None
            if on_disk != content:
                stale.append(path)
        else:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(content)
            print(f"wrote {path.relative_to(REPO)}")
    if stale:
        names = ", ".join(str(p.relative_to(REPO)) for p in stale)
        raise SystemExit(
            f"stale generated docs: {names}\n"
            f"run: PYTHONPATH=src python scripts/gen_docs.py")
    if args.check:
        print("generated docs are current")


if __name__ == "__main__":
    main()
