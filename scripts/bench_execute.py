#!/usr/bin/env python
"""Loaded-path benchmark: per-request ``execute`` vs batched ``execute_many``.

``ServiceRuntime.execute`` dominates loaded-run wall clock (see
``BENCH_kernel.json``'s ``loaded`` window), so this tracks the aggregate
tier's speedup on the hot path itself: simulate n requests of the
HotelReservation ``search_hotel`` operation per measurement, healthy and
with partial network loss (stochastic branching — the profile's worst
case), at n ∈ {1e3, 1e4, 1e5}.

It also measures multi-app co-hosting overhead (one two-app environment
vs two separate single-app environments at the same total offered rate),
the shared profile store's cross-session hit rate on an agents × problems
mini-suite, the warm process pool's wall-clock ratio against the cold
serial suite on the same cases, and snapshot/fork economics (snapshot
cost, fork cost, sweep-grid cells/sec from one prepared environment).

Results are appended to ``BENCH_kernel.json`` under ``execute_many`` /
``multi_app`` and as a ``trajectory`` entry so per-change history
accumulates.  Exits non-zero if ``execute_many`` is not ≥10× faster than
the per-request loop at n=10k — the acceptance floor for the aggregate
tier.

Usage::

    PYTHONPATH=src python scripts/bench_execute.py [--out BENCH_kernel.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.apps import HotelReservation, SocialNetwork
from repro.core.env import AppSpec, CloudEnvironment
from repro.kubesim import Cluster, NodeSpec, ResourcePlane
from repro.kubesim.objects import (
    Container, ContainerPort, Deployment, ObjectMeta, PodTemplate,
)
from repro.simcore import SimClock
from repro.telemetry import TelemetryCollector

OP = "search_hotel"
SPEEDUP_FLOOR = 10.0
FLOOR_AT_N = 10_000
POOL_FLOOR = 1.0        # warm pool must at least break even vs cold serial
GRID_CELLS_PER_S_FLOOR = 1.0


def _runtime(seed: int = 0, loss: float = 0.0):
    clock = SimClock()
    cluster = Cluster(clock=clock, seed=seed)
    collector = TelemetryCollector(clock, seed=seed)
    app = HotelReservation()
    rt = app.deploy(cluster, collector, seed=seed)
    if loss > 0:
        rt.network_loss["search"] = loss
    return rt


def bench_n(n: int, loss: float, repeats: int = 3) -> dict:
    """Best-of-``repeats`` wall time for both paths at batch size ``n``.

    Fresh runtimes per measurement so telemetry-store growth from one
    path can't slow the other; the batch measurement includes profile
    installation on a brand-new runtime — the realistic first-call cost
    (served by the process-wide profile store once any session in the
    process has compiled the state, exactly as in a multi-session
    sweep).  The batch side takes its min over extra trials: each trial
    is microseconds, so a best-of-3 would measure scheduler jitter, not
    the path."""
    loop_s = batch_s = float("inf")
    loop_errors = batch_errors = 0
    for _ in range(repeats):
        rt = _runtime(loss=loss)
        t0 = time.perf_counter()
        loop_errors = sum(not rt.execute(OP).ok for _ in range(n))
        loop_s = min(loop_s, time.perf_counter() - t0)
    for _ in range(max(repeats * 8, 25)):
        rt = _runtime(loss=loss)
        t0 = time.perf_counter()
        batch = rt.execute_many(OP, n)
        batch_s = min(batch_s, time.perf_counter() - t0)
        batch_errors = batch.errors
    result = {
        "n": n,
        "network_loss": loss,
        "execute_loop_s": round(loop_s, 4),
        "execute_many_s": round(batch_s, 6),
        "speedup": round(loop_s / batch_s, 1),
        "loop_error_rate": round(loop_errors / n, 4),
        "batch_error_rate": round(batch_errors / n, 4),
    }
    print(f"n={n:>7,}  loss={loss:.1f}  loop {loop_s:8.3f}s  "
          f"batch {batch_s:.6f}s  x{loop_s / batch_s:,.0f}")
    return result


def bench_tail_reservoir(n: int = 10_000, repeats: int = 3) -> dict:
    """Overhead of the adaptive exemplar reservoir: a pending p99 watch
    grows per-batch trace exemplars from 2 to 24 (tail-trigger fidelity);
    this measures what that costs on the hot path."""
    from repro.telemetry import MetricWatch
    plain = watched = float("inf")
    for _ in range(repeats):
        rt = _runtime()
        t0 = time.perf_counter()
        rt.execute_many(OP, n)
        plain = min(plain, time.perf_counter() - t0)

        rt = _runtime()
        rt.collector.add_watch(MetricWatch("frontend", "latency_p99_ms", 1e9))
        t0 = time.perf_counter()
        rt.execute_many(OP, n)
        watched = min(watched, time.perf_counter() - t0)
    result = {
        "n": n,
        "plain_s": round(plain, 6),
        "tail_watch_s": round(watched, 6),
        "overhead_x": round(watched / plain, 2),
    }
    print(f"tail reservoir: n={n:,}  plain {plain:.6f}s  "
          f"watched {watched:.6f}s  x{watched / plain:.2f}")
    return result


def bench_profile_cache(agents: int = 4, pids: int = 12,
                        max_steps: int = 6) -> dict:
    """Cross-session profile reuse: an agents × problems mini-suite at
    aggregate fidelity in one process, all sessions sharing the
    process-wide profile store.  ``hit_rate`` is the fraction of profile
    installs served from a co-tenant session's compile instead of a fresh
    one."""
    from repro.agents.registry import AGENT_NAMES, agent_factory
    from repro.core.batch import SessionSpec, run_sessions_sync
    from repro.problems import benchmark_pids, get_problem
    from repro.services.profile import SHARED_PROFILES

    specs = []
    for ai, agent in enumerate(AGENT_NAMES[:agents]):
        for pi, pid in enumerate(benchmark_pids()[:pids]):
            problem = get_problem(pid)
            problem.fidelity = "aggregate"
            specs.append(SessionSpec(
                problem=problem, agent=agent_factory(agent),
                agent_name=agent, seed=1000 * ai + pi,
                max_steps=max_steps))
    SHARED_PROFILES.clear()
    t0 = time.perf_counter()
    run_sessions_sync(specs, concurrency=4, release_handles=True)
    wall = time.perf_counter() - t0
    stats = dict(SHARED_PROFILES.stats)
    result = {
        "sessions": len(specs),
        "hits": stats["hits"],
        "misses": stats["misses"],
        "stores": stats["stores"],
        "hit_rate": round(SHARED_PROFILES.hit_rate, 3),
        "wall_s": round(wall, 3),
    }
    print(f"profile cache: {len(specs)} sessions  "
          f"{stats['hits']} shared hits / {stats['misses']} misses  "
          f"hit rate {result['hit_rate']:.0%}  ({wall:.2f}s)")
    return result


def bench_pool(agents: int = 2, pids: int = 6, max_steps: int = 8,
               processes: int = 4) -> dict:
    """Warm process-pool fan-out vs the cold serial suite on the same
    cases; ``pool_vs_serial_x`` > 1 means the pool paid off.

    The cold pool regression (0.70x recorded before PR 8) came from every
    worker re-running full environment setup — create, warm up, soak —
    per case, which a single-core host cannot hide behind parallelism.
    The warm path prepares each problem's environment exactly once, snap-
    shots it, and ships the snapshot to the pool whose workers fork per
    cell (``run_grid``); setup is paid per *problem*, not per *case*.
    The warm wall time includes snapshot preparation — the honest total
    an operator pays end to end."""
    from repro.agents.registry import AGENT_NAMES
    from repro.bench import BenchmarkRunner
    from repro.problems import benchmark_pids

    agent_names = AGENT_NAMES[:agents]
    pid_list = benchmark_pids()[:pids]
    t0 = time.perf_counter()
    BenchmarkRunner(max_steps=max_steps, seed=7).run_suite(
        agents=agent_names, pids=pid_list)
    serial = time.perf_counter() - t0

    warm_runner = BenchmarkRunner(max_steps=max_steps, seed=7,
                                  concurrency=processes, executor="process")
    t0 = time.perf_counter()
    prep = 0.0
    cases = 0
    for pid in pid_list:
        t1 = time.perf_counter()
        snapshot = warm_runner.prepare_snapshot(pid)
        prep += time.perf_counter() - t1
        cases += len(warm_runner.sweep_grid(snapshot, agents=agent_names,
                                            seeds=(7,)))
    pool = time.perf_counter() - t0
    result = {
        "cases": cases,
        "processes": processes,
        "serial_s": round(serial, 3),
        "pool_s": round(pool, 3),
        "pool_prep_s": round(prep, 3),
        "pool_vs_serial_x": round(serial / pool, 2),
    }
    print(f"pool: {cases} cases  cold serial {serial:.2f}s  "
          f"warm {processes}-proc pool {pool:.2f}s "
          f"(incl {prep:.2f}s snapshot prep)  x{serial / pool:.2f}")
    return result


def bench_fork(quick: bool = False) -> dict:
    """Snapshot/fork economics: what one snapshot costs to take, what a
    fork costs to rehydrate, and how fast a sweep grid chews through
    cells — serial and warm-pooled — from a single prepared environment.
    The serial and pooled grids must be bit-identical; the grid is
    ≥1000 cells (agents x agent-seeds x step-limits) in the full run."""
    from repro.agents.registry import AGENT_NAMES, agent_factory
    from repro.bench import BenchmarkRunner
    from repro.core import GridCell, run_grid

    pid = "misconfig_k8s_social_net-detection-1"
    runner = BenchmarkRunner(max_steps=4, seed=7)
    t0 = time.perf_counter()
    snapshot = runner.prepare_snapshot(pid)
    snapshot_s = time.perf_counter() - t0

    fork_s = float("inf")
    for _ in range(5):
        t0 = time.perf_counter()
        env = snapshot.fork()
        fork_s = min(fork_s, time.perf_counter() - t0)
        env.close()

    agents = AGENT_NAMES[:2] if quick else AGENT_NAMES
    seeds = range(5) if quick else range(126)
    limits = (2, 3)
    cells = [GridCell(agent=agent_factory(name), agent_name=name,
                      seed=seed, max_steps=limit)
             for name in agents for seed in seeds for limit in limits]
    t0 = time.perf_counter()
    serial = run_grid(snapshot, cells, processes=1)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    pooled = run_grid(snapshot, cells, processes=4)
    pooled_s = time.perf_counter() - t0
    identical = serial == pooled
    result = {
        "pid": pid,
        "snapshot_s": round(snapshot_s, 4),
        "snapshot_mb": round(snapshot.size_bytes / 1e6, 2),
        "fork_s": round(fork_s, 4),
        "grid_cells": len(cells),
        "grid_serial_s": round(serial_s, 3),
        "grid_pool_s": round(pooled_s, 3),
        "grid_cells_per_s": round(len(cells) / serial_s, 2),
        "grid_identical": identical,
    }
    print(f"fork: snapshot {snapshot_s:.3f}s ({result['snapshot_mb']}MB)  "
          f"fork {fork_s * 1000:.0f}ms  grid {len(cells)} cells "
          f"serial {serial_s:.1f}s / pooled {pooled_s:.1f}s  "
          f"{result['grid_cells_per_s']:.1f} cells/s  "
          f"identical={identical}")
    return result


class _BenchService:
    busy_mcores_per_rps = 2.0


class _BenchRuntime:
    """Minimal runtime shim: the plane only reads ``namespace`` and
    ``services[name].busy_mcores_per_rps``."""

    def __init__(self, namespace, service_names):
        self.namespace = namespace
        self.services = {name: _BenchService() for name in service_names}


def bench_nodes(pods: int = 10_000, nodes: int = 100,
                deployments: int = 20, rollups: int = 20) -> dict:
    """Resource-plane cost at scale: bin-pack ``pods`` pods over ``nodes``
    capacity-bounded nodes, then measure the per-rollup utilization sweep
    (the recurring 5 s event every coupled environment pays)."""
    clock = SimClock()
    cluster = Cluster(clock=clock, node_specs=[
        NodeSpec(f"node-{i}") for i in range(nodes)
    ])
    replicas = pods // deployments
    names = [f"svc-{i}" for i in range(deployments)]
    t0 = time.perf_counter()
    for name in names:
        cluster.create_deployment(Deployment(
            meta=ObjectMeta(name=name, namespace="default"),
            replicas=replicas,
            selector={"app": name},
            template=PodTemplate(
                labels={"app": name},
                containers=[Container(name, "img:latest",
                                      [ContainerPort(8080)],
                                      cpu_request=100.0,
                                      mem_request=128.0)],
            ),
        ))
    schedule_s = time.perf_counter() - t0
    bound = sum(1 for p in cluster.pods.values() if p.bound_node)

    plane = ResourcePlane(cluster, clock)
    plane.register_runtime(_BenchRuntime("default", names))
    rollup_s = float("inf")
    for _ in range(rollups):
        for name in names:
            plane.account("default", name, count=500)
        clock.advance(5.0)
        t0 = time.perf_counter()
        plane.rollup()
        rollup_s = min(rollup_s, time.perf_counter() - t0)
    result = {
        "pods": pods,
        "nodes": nodes,
        "deployments": deployments,
        "pods_bound": bound,
        "schedule_s": round(schedule_s, 4),
        "rollup_s": round(rollup_s, 6),
        "rollups_per_s": round(1.0 / rollup_s, 1),
    }
    print(f"nodes: {pods:,} pods over {nodes} nodes  "
          f"schedule {schedule_s:.3f}s  rollup {rollup_s:.6f}s "
          f"({1.0 / rollup_s:,.0f}/s)")
    return result


def bench_multi_app(seconds: float = 300.0, rps: float = 500.0,
                    repeats: int = 3) -> dict:
    """Co-hosting overhead: advance one 2-app environment vs two separate
    single-app environments for the same virtual window at the same total
    offered rate (rps per app), on the aggregate tier.  ``overhead_x``
    near 1.0 means the shared queue/collector cost is negligible."""
    multi = separate = float("inf")
    for _ in range(repeats):
        env = CloudEnvironment([
            AppSpec(HotelReservation, workload_rate=rps),
            AppSpec(SocialNetwork, workload_rate=rps),
        ], seed=0, fidelity="aggregate")
        t0 = time.perf_counter()
        env.advance(seconds)
        multi = min(multi, time.perf_counter() - t0)
        served_multi = sum(d.stats.requests for d in env.drivers)
        env.close()

        envs = [CloudEnvironment(HotelReservation, seed=0, workload_rate=rps,
                                 fidelity="aggregate"),
                CloudEnvironment(SocialNetwork, seed=0, workload_rate=rps,
                                 fidelity="aggregate")]
        t0 = time.perf_counter()
        for e in envs:
            e.advance(seconds)
        separate = min(separate, time.perf_counter() - t0)
        served_separate = sum(e.driver.stats.requests for e in envs)
        for e in envs:
            e.close()
    result = {
        "virtual_seconds": seconds,
        "rps_per_app": rps,
        "requests_multi": served_multi,
        "requests_separate": served_separate,
        "multi_env_s": round(multi, 6),
        "separate_envs_s": round(separate, 6),
        "overhead_x": round(multi / separate, 3),
    }
    print(f"multi-app: {seconds:g} virtual s at 2x{rps:g} rps  "
          f"2-app env {multi:.4f}s  2 separate envs {separate:.4f}s  "
          f"x{multi / separate:.2f}")
    return result


def bench_generator(pool_n: int = 200, arm_sample: int = 8) -> dict:
    """Procedural scenario synthesis economics: how fast the seeded
    generator turns ``(seed, index)`` coordinates into validated problem
    recipes (spec + problem + composed timeline + arm-time validation,
    no environment), and how fast a sampled subset arms on a real
    environment (create + arm + cancel + close) — the end-to-end cost of
    drawing a never-seen incident for a sweep."""
    from repro.problems import ScenarioGenerator

    gen = ScenarioGenerator(0)
    t0 = time.perf_counter()
    for i in range(pool_n):
        prob = gen.problem(i)
        prob.build_schedule().validate()
    gen_s = time.perf_counter() - t0

    arm_s = 0.0
    stride = max(pool_n // arm_sample, 1)
    indices = list(range(0, pool_n, stride))[:arm_sample]
    for i in indices:
        prob = ScenarioGenerator(0).problem(i)
        t0 = time.perf_counter()
        env = prob.create_environment(seed=1)
        armed = prob.build_schedule().arm(env)
        armed.cancel_pending()
        env.close()
        arm_s += time.perf_counter() - t0
    result = {
        "generated_pool_size": pool_n,
        "gen_s": round(gen_s, 4),
        "gen_per_s": round(pool_n / gen_s, 1),
        "arm_sample": len(indices),
        "arm_per_s": round(len(indices) / arm_s, 1),
    }
    print(f"generator: {pool_n} problems composed+validated in {gen_s:.3f}s "
          f"({result['gen_per_s']:,.0f}/s)  "
          f"{len(indices)} armed on live envs at {result['arm_per_s']:.1f}/s")
    return result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_kernel.json",
                        help="benchmark file to append to")
    parser.add_argument("--quick", action="store_true",
                        help="skip the n=1e5 point (CI smoke mode)")
    args = parser.parse_args()

    sizes = [1_000, 10_000] if args.quick else [1_000, 10_000, 100_000]
    results = {
        "healthy": [bench_n(n, loss=0.0) for n in sizes],
        "network_loss": [bench_n(n, loss=0.2) for n in sizes],
    }
    tail = bench_tail_reservoir(repeats=1 if args.quick else 3)
    multi = bench_multi_app(seconds=120.0 if args.quick else 300.0,
                            repeats=1 if args.quick else 3)
    nodes = bench_nodes(pods=1_000 if args.quick else 10_000,
                        nodes=10 if args.quick else 100,
                        rollups=5 if args.quick else 20)
    cache = bench_profile_cache(agents=2 if args.quick else 4,
                                pids=4 if args.quick else 12)
    pool = bench_pool(pids=2 if args.quick else 6,
                      max_steps=5 if args.quick else 8)
    fork = bench_fork(quick=args.quick)
    synthesis = bench_generator(pool_n=100 if args.quick else 200,
                                arm_sample=4 if args.quick else 8)

    out = Path(args.out)
    try:
        payload = json.loads(out.read_text()) if out.exists() else {}
    except json.JSONDecodeError:
        payload = {}
    tail_before = payload.get("tail_reservoir", {}).get("overhead_x")
    pool_before = payload.get("process_pool", {}).get("pool_vs_serial_x")
    prev = (payload.get("trajectory") or [{}])[-1]
    payload["execute_many"] = {
        "benchmark": "ServiceRuntime.execute loop vs execute_many "
                     "(wall seconds per n simulated requests)",
        "operation": OP,
        "python": platform.python_version(),
        "results": results,
    }
    floor_points = [r for r in results["healthy"] + results["network_loss"]
                    if r["n"] == FLOOR_AT_N]
    entry = {
        "entry": "scenario_synthesis",
        "description": "procedural scenario synthesis: a seeded "
                       "ScenarioGenerator composes app sets x fault "
                       "families x trigger shapes x rate policies x "
                       "fidelity tiers into validated, gradable problems "
                       "(gen_per_s = compose+validate throughput, "
                       "arm_per_s = live-environment arm throughput)",
        "generated_pool_size": synthesis["generated_pool_size"],
        "gen_per_s": synthesis["gen_per_s"],
        "arm_per_s": synthesis["arm_per_s"],
        "speedup_at_10k_before": prev.get("speedup_at_10k"),
        "speedup_at_10k": min(r["speedup"] for r in floor_points),
        "best_speedup": max(r["speedup"]
                            for rs in results.values() for r in rs),
        "tail_reservoir_overhead_before_x": tail_before,
        "tail_reservoir_overhead_x": tail["overhead_x"],
        "profile_cache_hit_rate": cache["hit_rate"],
        "pool_vs_serial_before_x": pool_before,
        "pool_vs_serial_x": pool["pool_vs_serial_x"],
        "multi_app_overhead_x": multi["overhead_x"],
        "snapshot_s": fork["snapshot_s"],
        "fork_s": fork["fork_s"],
        "grid_cells": fork["grid_cells"],
        "grid_cells_per_s": fork["grid_cells_per_s"],
        "grid_identical": fork["grid_identical"],
        "schedule_s_before": prev.get("schedule_s_at_10k_pods"),
        "schedule_s_at_10k_pods": nodes["schedule_s"],
        "rollup_s_at_10k_pods": nodes["rollup_s"],
    }
    payload["tail_reservoir"] = tail
    payload["multi_app"] = multi
    payload["bench_nodes"] = nodes
    payload["profile_cache"] = cache
    payload["process_pool"] = pool
    payload["env_fork"] = fork
    payload["scenario_synthesis"] = synthesis
    payload.setdefault("trajectory", []).append(entry)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")

    if entry["speedup_at_10k"] < SPEEDUP_FLOOR:
        raise SystemExit(
            f"execute_many speedup at n={FLOOR_AT_N} fell below "
            f"{SPEEDUP_FLOOR}x: {entry['speedup_at_10k']}x")
    if not fork["grid_identical"]:
        raise SystemExit("forked grid diverged from the serial path")
    if fork["grid_cells_per_s"] < GRID_CELLS_PER_S_FLOOR:
        raise SystemExit(
            f"fork grid throughput fell below {GRID_CELLS_PER_S_FLOOR} "
            f"cells/s: {fork['grid_cells_per_s']}")
    if pool["pool_vs_serial_x"] < POOL_FLOOR:
        raise SystemExit(
            f"warm pool fell below {POOL_FLOOR}x vs cold serial: "
            f"{pool['pool_vs_serial_x']}x")


if __name__ == "__main__":
    main()
