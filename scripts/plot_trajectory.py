#!/usr/bin/env python
"""Render ``BENCH_kernel.json``'s per-PR ``trajectory`` list to an SVG.

Each trajectory entry is one change's hot-path measurement (appended by
``scripts/bench_execute.py``).  This plots ``speedup_at_10k`` and
``best_speedup`` per entry on a log scale, plus the near-1.0 ratio
series for entries that measure them: ``multi_app_overhead_x`` (2-app
environment vs two separate environments), ``tail_reservoir_overhead_x``
(batch call with a percentile reservoir attached vs without), and
``pool_vs_serial_x`` (cold serial sweep wall time over warm process-pool
wall time; >1 means the pool won), and ``grid_cells_per_s`` (sweep-grid
throughput from one forked snapshot) — a tiny, dependency-free SVG
so the CI ``kernel-bench`` job can publish the perf trajectory as an
artifact next to the raw JSON.

Usage::

    python scripts/plot_trajectory.py [--in BENCH_kernel.json] [--out trajectory.svg]
"""

from __future__ import annotations

import argparse
import json
import math
from pathlib import Path

WIDTH, HEIGHT = 640, 360
MARGIN_L, MARGIN_R, MARGIN_T, MARGIN_B = 70, 20, 40, 70
SERIES = (("speedup_at_10k", "#2563eb"), ("best_speedup", "#d97706"),
          ("multi_app_overhead_x", "#059669"),
          ("tail_reservoir_overhead_x", "#7c3aed"),
          ("pool_vs_serial_x", "#db2777"),
          ("grid_cells_per_s", "#0891b2"))


def _points(entries: list[dict], key: str) -> list[tuple[int, float]]:
    return [(i, e[key]) for i, e in enumerate(entries)
            if isinstance(e.get(key), (int, float)) and e[key] > 0]


def render(entries: list[dict]) -> str:
    plot_w = WIDTH - MARGIN_L - MARGIN_R
    plot_h = HEIGHT - MARGIN_T - MARGIN_B
    values = [v for key, _ in SERIES for _, v in _points(entries, key)]
    lo = min(1.0, *values) if values else 1.0
    hi = max(10.0, *values) if values else 10.0
    lg_lo, lg_hi = math.floor(math.log10(lo)), math.ceil(math.log10(hi))
    lg_hi = max(lg_hi, lg_lo + 1)

    def x(i: int) -> float:
        n = max(len(entries) - 1, 1)
        return MARGIN_L + plot_w * (i / n if len(entries) > 1 else 0.5)

    def y(v: float) -> float:
        frac = (math.log10(v) - lg_lo) / (lg_hi - lg_lo)
        return MARGIN_T + plot_h * (1.0 - frac)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
        f'height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" '
        f'font-family="monospace" font-size="11">',
        f'<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>',
        f'<text x="{MARGIN_L}" y="22" font-size="14">'
        f'execute hot-path speedup trajectory (per PR, log scale)</text>',
    ]
    # log gridlines + axis labels
    for lg in range(lg_lo, lg_hi + 1):
        gy = y(10.0 ** lg)
        parts.append(f'<line x1="{MARGIN_L}" y1="{gy:.1f}" '
                     f'x2="{WIDTH - MARGIN_R}" y2="{gy:.1f}" '
                     f'stroke="#e5e7eb"/>')
        parts.append(f'<text x="{MARGIN_L - 8}" y="{gy + 4:.1f}" '
                     f'text-anchor="end">1e{lg}x</text>')
    # x labels: entry names
    for i, e in enumerate(entries):
        parts.append(
            f'<text x="{x(i):.1f}" y="{HEIGHT - MARGIN_B + 16}" '
            f'text-anchor="end" transform="rotate(-30 {x(i):.1f} '
            f'{HEIGHT - MARGIN_B + 16})">{e.get("entry", f"#{i}")}</text>')
    # series
    for si, (key, color) in enumerate(SERIES):
        pts = _points(entries, key)
        if len(pts) > 1:
            path = " ".join(f"{x(i):.1f},{y(v):.1f}" for i, v in pts)
            parts.append(f'<polyline points="{path}" fill="none" '
                         f'stroke="{color}" stroke-width="2"/>')
        for i, v in pts:
            parts.append(f'<circle cx="{x(i):.1f}" cy="{y(v):.1f}" r="4" '
                         f'fill="{color}"/>')
        ly = 22 + 16 * (si + 1)
        parts.append(f'<circle cx="{WIDTH - 170}" cy="{ly - 4}" r="4" '
                     f'fill="{color}"/>')
        parts.append(f'<text x="{WIDTH - 160}" y="{ly}">{key}</text>')
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--in", dest="inp", default="BENCH_kernel.json")
    parser.add_argument("--out", default="trajectory.svg")
    args = parser.parse_args()

    payload = json.loads(Path(args.inp).read_text())
    entries = payload.get("trajectory", [])
    if not entries:
        raise SystemExit(f"{args.inp} has no trajectory entries to plot")
    Path(args.out).write_text(render(entries))
    print(f"wrote {args.out} ({len(entries)} trajectory entries)")


if __name__ == "__main__":
    main()
