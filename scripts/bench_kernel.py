#!/usr/bin/env python
"""Micro-benchmark: event kernel vs the seed's tick loop.

Measures ``CloudEnvironment.advance()`` throughput in **virtual seconds
simulated per wall-clock second** and writes ``BENCH_kernel.json`` so the
perf trajectory is tracked from PR to PR.

Three windows:

* ``idle``           — zero offered load, default 5s telemetry scrapes;
* ``idle_sparse``    — zero offered load, 300s scrapes (a quiet night at
  coarse metrics resolution: the kernel's best case, since it jumps
  between scrape events instead of ticking through dead time);
* ``loaded``         — the benchmark's 60 rps with 5s scrapes (request
  execution dominates; the two paths should be near parity).

"before" = the seed's hand-rolled 1-second tick loop (inlined below —
the public ``WorkloadDriver.run_for`` was removed; the bit-exact
reference lives in ``tests/core/test_kernel_equivalence.py``); "after" =
the event kernel (``env.advance``).

Usage::

    PYTHONPATH=src python scripts/bench_kernel.py [--out BENCH_kernel.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.apps import HotelReservation
from repro.core import CloudEnvironment
from repro.workload import ConstantRate


def _make_env(rate: float, scrape_interval: float) -> CloudEnvironment:
    env = CloudEnvironment(HotelReservation, seed=0,
                           policy=ConstantRate(rate))
    env.driver.scrape_interval = scrape_interval
    return env


def _tick_loop(driver, seconds: float) -> None:
    """The seed's 1-second tick loop, as the *benchmark baseline only*.

    The bit-exact reference (and the equivalence proof) lives in
    tests/core/test_kernel_equivalence.py::legacy_run_for; this replica
    only needs to stay representative of per-tick stepping cost, not
    bit-identical to it.
    """
    clock = driver.runtime.clock
    end = clock.now + seconds
    while clock.now < end:
        step = min(1.0, end - clock.now)
        want = driver.policy.rate(clock.now) * step + driver._carry
        n = int(want)
        driver._carry = want - n
        for _ in range(min(n, driver.max_requests_per_tick)):
            driver._issue_one()
        clock.advance(step)
        if clock.now - driver._last_scrape >= driver.scrape_interval:
            driver._scrape()


def _measure(run, virtual_seconds: float) -> float:
    t0 = time.perf_counter()
    run(virtual_seconds)
    return virtual_seconds / (time.perf_counter() - t0)


def bench_window(name: str, rate: float, scrape_interval: float,
                 virtual_seconds: float, repeats: int = 3) -> dict:
    """Best-of-``repeats`` throughput for the tick loop vs the kernel.

    Measurement order alternates between repeats so thermal / frequency
    drift doesn't systematically favour one path."""
    tick = kernel = 0.0
    for i in range(repeats):
        order = ("kernel", "tick") if i % 2 else ("tick", "kernel")
        for kind in order:
            env = _make_env(rate, scrape_interval)
            fn = (lambda s, d=env.driver: _tick_loop(d, s)) \
                if kind == "tick" else env.advance
            got = _measure(fn, virtual_seconds)
            if kind == "tick":
                tick = max(tick, got)
            else:
                kernel = max(kernel, got)
    result = {
        "offered_rps": rate,
        "scrape_interval_s": scrape_interval,
        "virtual_seconds": virtual_seconds,
        "tick_loop_vs_per_wall_s": round(tick, 1),
        "kernel_vs_per_wall_s": round(kernel, 1),
        "speedup": round(kernel / tick, 3),
    }
    print(f"{name:12s} tick {tick:>12,.0f} vs/s   "
          f"kernel {kernel:>12,.0f} vs/s   x{kernel / tick:.2f}")
    return result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_kernel.json",
                        help="output path (default: ./BENCH_kernel.json)")
    parser.add_argument("--quick", action="store_true",
                        help="smaller windows (CI smoke mode)")
    args = parser.parse_args()

    scale = 0.1 if args.quick else 1.0
    windows = {
        "idle": bench_window("idle", 0.0, 5.0, 100_000.0 * scale),
        "idle_sparse": bench_window("idle_sparse", 0.0, 300.0,
                                    400_000.0 * scale),
        "loaded": bench_window("loaded", 60.0, 5.0, 2_000.0 * scale),
    }
    out = Path(args.out)
    # Preserve sections other benchmarks own (execute_many, trajectory).
    try:
        payload = json.loads(out.read_text()) if out.exists() else {}
    except json.JSONDecodeError:
        payload = {}
    payload.update({
        "benchmark": "event kernel advance() throughput (virtual s / wall s)",
        "before": "seed tick loop (inlined reference; public run_for removed)",
        "after": "event kernel (CloudEnvironment.advance)",
        "python": platform.python_version(),
        "windows": windows,
    })
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    idle_speedups = [windows["idle"]["speedup"],
                     windows["idle_sparse"]["speedup"]]
    if max(idle_speedups) <= 1.0:
        raise SystemExit(
            f"kernel did not beat the tick loop on idle windows: "
            f"{idle_speedups}")


if __name__ == "__main__":
    main()
