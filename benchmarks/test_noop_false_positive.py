"""§3.6.4: the Noop false-positive probe.

Shape target (paper): only GPT-4-W-SHELL correctly reports the healthy
system as normal; the other agents misinterpret normal workload activity
as a fault."""

from repro.agents.registry import AGENT_NAMES
from repro.problems import noop_pids


def test_noop_false_positives(benchmark, runner):
    def probe():
        outcome = {}
        for agent in AGENT_NAMES:
            outcome[agent] = all(
                runner.run_case(agent, pid).success for pid in noop_pids()
            )
        return outcome

    outcome = benchmark.pedantic(probe, rounds=1, iterations=1)
    print()
    for agent, ok in outcome.items():
        print(f"  {agent:<18} {'correct (no fault)' if ok else 'FALSE POSITIVE'}")

    assert outcome["gpt-4-w-shell"], "GPT-4 should resist the false positive"
    others = [a for a in AGENT_NAMES if a != "gpt-4-w-shell"]
    assert sum(not outcome[a] for a in others) >= 2, \
        "most other agents should false-positive (paper: all three do)"
