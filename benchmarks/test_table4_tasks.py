"""Table 4a–d: per-task agent performance plus the non-LLM baselines.

Shape targets (paper):
  (a) detection — FLASH answers everything; all LLM agents beat MKSMC;
  (b) localization — LLM agents beat PDiagnose/RMLAD; list-submitting
      agents (ReAct/FLASH) show acc@3 ≥ acc@1;
  (c) RCA — the hardest labelling task: every agent under ~55%;
  (d) mitigation — hardest overall: GPT-3.5 recovers nothing, FLASH leads.
"""

import pytest

from repro.baselines import run_baseline_suite
from repro.bench import render_table, table4_by_task
from benchmarks.conftest import BENCH_SEED


@pytest.fixture(scope="module")
def baselines():
    return {
        "mksmc": run_baseline_suite("mksmc", seed=BENCH_SEED),
        "pdiagnose": run_baseline_suite("pdiagnose", seed=BENCH_SEED),
        "rmlad": run_baseline_suite("rmlad", seed=BENCH_SEED),
    }


@pytest.fixture(scope="module")
def tables(suite_results, baselines):
    return table4_by_task(suite_results, baselines=baselines)


def _acc(rows, agent, col=1):
    row = next(r for r in rows if r[0] == agent)
    return float(str(row[col]).rstrip("%"))


def test_table4a_detection(benchmark, tables, baselines):
    headers, rows = benchmark(lambda: tables["detection"])
    print()
    print(render_table(headers, rows, "Table 4a — detection"))
    assert _acc(rows, "FLASH") == 100.0        # paper: FLASH answers all
    for agent in ("GPT-4-W-SHELL", "REACT", "FLASH"):
        assert _acc(rows, agent) > baselines["mksmc"]["accuracy"] * 100


def test_table4b_localization(benchmark, tables, baselines):
    headers, rows = benchmark(lambda: tables["localization"])
    print()
    print(render_table(headers, rows, "Table 4b — localization"))
    for agent in ("GPT-4-W-SHELL", "REACT", "FLASH"):
        assert _acc(rows, agent) > baselines["pdiagnose"]["accuracy"] * 100
        assert _acc(rows, agent) > baselines["rmlad"]["accuracy"] * 100
    # list submitters: acc@3 (col 1) >= acc@1 (col 2)
    for agent in ("REACT", "FLASH"):
        assert _acc(rows, agent, col=1) >= _acc(rows, agent, col=2)


def test_table4c_rca(benchmark, tables):
    headers, rows = benchmark(lambda: tables["analysis"])
    print()
    print(render_table(headers, rows, "Table 4c — root cause analysis"))
    # RCA is hard for everyone (paper: 9-45%)
    for row in rows:
        assert float(str(row[1]).rstrip("%")) <= 60.0
    assert _acc(rows, "GPT-3.5-W-SHELL") == min(
        float(str(r[1]).rstrip("%")) for r in rows)


def test_table4d_mitigation(benchmark, tables):
    headers, rows = benchmark(lambda: tables["mitigation"])
    print()
    print(render_table(headers, rows, "Table 4d — mitigation"))
    assert _acc(rows, "GPT-3.5-W-SHELL") == 0.0   # paper: recovers nothing
    best = max(rows, key=lambda r: float(str(r[1]).rstrip("%")))
    assert best[0] == "FLASH"                      # paper: FLASH leads
