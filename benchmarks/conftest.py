"""Shared state for the benchmark harness.

The full suite (4 agents × 48 problems) runs once per session and backs
Tables 3–5 and Figures 6–7; Figure 5 sweeps the step limit on a reduced
problem subset (one problem per fault family) to keep the harness under a
few minutes.

Set ``AIOPSLAB_BENCH_SEED`` to change the evaluation seed.
"""

from __future__ import annotations

import os

import pytest

from repro.bench import BenchmarkRunner

BENCH_SEED = int(os.environ.get("AIOPSLAB_BENCH_SEED", "0"))

#: one problem per fault family — the reduced pool for expensive sweeps
REDUCED_PIDS = [
    "auth_missing_hotel_res-detection-1",
    "misconfig_k8s_social_net-detection-1",
    "revoke_auth_hotel_res-localization-1",
    "user_unregistered_hotel_res-localization-1",
    "buggy_app_image_hotel_res-analysis-1",
    "scale_pod_zero_social_net-analysis-1",
    "assign_to_non_existent_node_social_net-mitigation-1",
    "misconfig_k8s_social_net-mitigation-1",
    "network_loss_hotel_res-detection-1",
    "pod_failure_hotel_res-localization-1",
    "revoke_auth_hotel_res-mitigation-1",
    "auth_missing_hotel_res-analysis-1",
]


@pytest.fixture(scope="session")
def runner() -> BenchmarkRunner:
    return BenchmarkRunner(max_steps=20, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def suite_results(runner):
    """The full 4×48 evaluation (the paper's headline experiment)."""
    return runner.run_suite()
