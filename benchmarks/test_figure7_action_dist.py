"""Figure 7: action distribution split by successful vs failed cases.

Shape targets (paper): successful cases submit more (they finish) and use
get_metrics/get_traces sparingly; failed cases show relatively more
telemetry-grazing."""

from repro.bench import figure7_action_distribution, render_series


def test_figure7_action_distribution(benchmark, suite_results):
    dist = benchmark(figure7_action_distribution, suite_results)
    print()
    print(render_series("Figure 7 — action distribution by outcome", dist))

    ok, fail = dist["successful"], dist["failure"]
    # successful cases end in submission at a higher rate
    assert ok["Submit"] > fail["Submit"]
    # failure cases consume relatively more raw metric/trace data (§3.6.2)
    assert (fail["get_metrics"] + fail["get_traces"]) >= \
        (ok["get_metrics"] + ok["get_traces"])
