"""Figure 6: percentage of actions per API category for ReAct and FLASH.

Shape targets (paper): get_logs is the most-used telemetry API for both
agents; FLASH never calls get_traces; K8S (shell) actions dominate."""

from repro.bench import figure6_api_usage, render_series


def test_figure6_api_usage(benchmark, suite_results):
    usage = benchmark(figure6_api_usage, suite_results)
    print()
    print(render_series("Figure 6 — % of actions by API", usage))

    for agent in ("react", "flash"):
        telemetry = {k: usage[agent][k]
                     for k in ("get_logs", "get_metrics", "get_traces")}
        assert max(telemetry, key=telemetry.get) == "get_logs"
    assert usage["flash"]["get_traces"] == 0.0
    assert usage["react"]["K8S"] > 20.0
