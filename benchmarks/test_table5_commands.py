"""Table 5: occurrences of system commands in ReAct/FLASH trajectories.

Shape target: shell usage beyond kubectl is sparse and concentrated in a
handful of commands (the paper counts ls/cat/grep/mongo/echo/awk)."""

from repro.bench import render_table, table5_commands


def test_table5_commands(benchmark, suite_results):
    headers, rows = benchmark(table5_commands, suite_results)
    print()
    print(render_table(headers, rows, "Table 5 — system command occurrences"))

    by_agent = {row[0]: dict(zip(headers[1:], row[1:])) for row in rows}
    # mitigation sessions drive mongo shell usage through kubectl exec
    assert by_agent["FLASH"]["mongo"] + by_agent["REACT"]["mongo"] > 0
    # no agent reaches for find/awk/ip in this environment (sparse row,
    # matching the paper's near-empty columns)
    for agent in by_agent.values():
        assert agent["find"] == 0 and agent["ip"] == 0
