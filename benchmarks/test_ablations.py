"""Ablations called out in DESIGN.md.

1. **Headroom/floor**: the oracle profile (perfect policy-following) vs the
   random profile (no planning, no commitment) bound what any LLM backend
   can achieve in this environment — the gap the four agents sit inside.
2. **Fault-soak sensitivity**: detection depends on the fault having had
   time to surface in telemetry; with zero soak, evidence is scarcer.
"""

import pytest

from benchmarks.conftest import BENCH_SEED, REDUCED_PIDS
from repro.bench import BenchmarkRunner
from repro.problems import get_problem


def test_ablation_oracle_vs_random(benchmark, runner):
    def run():
        scores = {}
        for profile in ("oracle", "random"):
            wins = sum(runner.run_case(profile, pid).success
                       for pid in REDUCED_PIDS)
            scores[profile] = wins / len(REDUCED_PIDS)
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"  oracle headroom: {scores['oracle']:.0%}   "
          f"random floor: {scores['random']:.0%}")
    assert scores["oracle"] >= 0.9, \
        "the environment must be solvable by a perfect policy-follower"
    assert scores["random"] <= 0.25, \
        "an unplanned agent should solve almost nothing"
    assert scores["oracle"] - scores["random"] >= 0.6


def test_ablation_fault_soak(benchmark):
    """Detection accuracy vs. how long the fault has been live."""

    def run():
        out = {}
        for soak in (2.0, 30.0):
            runner = BenchmarkRunner(max_steps=10, seed=BENCH_SEED)
            wins = 0
            pids = ["revoke_auth_hotel_res-detection-1",
                    "misconfig_k8s_social_net-detection-1",
                    "network_loss_hotel_res-detection-1"]
            for pid in pids:
                problem = get_problem(pid)
                problem.fault_soak_seconds = soak
                orch_case = runner.run_case("oracle", pid)
                # re-run through a problem instance with modified soak
                from repro.core import Orchestrator
                from repro.agents import build_agent
                orch = Orchestrator(seed=BENCH_SEED)
                ctx = orch.init_problem(problem)
                agent = build_agent("oracle", *ctx, task_type="detection",
                                    seed=BENCH_SEED)
                orch.register_agent(agent, "oracle")
                wins += orch.run_problem(max_steps=10)["success"]
            out[soak] = wins / len(pids)
        return out

    accuracy = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"  soak  2s: acc {accuracy[2.0]:.0%}   soak 30s: acc {accuracy[30.0]:.0%}")
    assert accuracy[30.0] >= accuracy[2.0]


def test_benchmark_single_case_cost(benchmark, runner):
    """Micro-benchmark: wall-clock cost of one full agent-problem session
    (environment build + warmup + 20-step budget)."""
    result = benchmark(lambda: runner.run_case(
        "gpt-4-w-shell", "revoke_auth_hotel_res-detection-1"))
    assert result.steps >= 1
