"""Table 2: the fault library and per-fault problem counts."""

from repro.bench import render_table, table2_problem_pool
from repro.problems import pool_summary


def test_table2_problem_pool(benchmark):
    headers, rows = benchmark(table2_problem_pool)
    print()
    print(render_table(headers, rows, "Table 2 — fault/problem inventory"))

    # paper: 48 benchmark problems; Table-2 counts sum to 50 with the two
    # Noop probes (see DESIGN.md accounting)
    assert sum(r[-1] for r in rows) == 50
    summary = pool_summary()
    assert summary["total"] == 48
    by_name = {r[1]: r[-1] for r in rows}
    assert by_name["TargetPortMisconfig"] == 12
    assert by_name["RevokeAuth"] == 8
    assert by_name["UserUnregistered"] == 8
    assert by_name["NetworkLoss"] == 2
    assert by_name["Noop"] == 2
