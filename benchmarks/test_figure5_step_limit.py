"""Figure 5: agent accuracy vs. the maximum allowed steps K.

Shape targets (paper): accuracy is non-trivially higher at K=20 than K=3
for the structured agents, and GPT-3.5 plateaus — more steps do not help
it beyond a small K."""

from benchmarks.conftest import REDUCED_PIDS
from repro.bench import figure5_step_limit, render_series


def test_figure5_step_limit(benchmark, runner):
    series = benchmark.pedantic(
        figure5_step_limit,
        args=(runner,),
        kwargs={"limits": (3, 5, 10, 15, 20), "pids": REDUCED_PIDS},
        rounds=1, iterations=1,
    )
    print()
    print(render_series("Figure 5 — accuracy vs step limit K", series))

    for agent in ("flash", "react"):
        assert series[agent][20] >= series[agent][3], \
            f"{agent} should improve with more steps"
    # best accuracy at K=20 belongs to a structured agent (paper: FLASH)
    best = max(series, key=lambda a: series[a][20])
    assert best in ("flash", "react")
    # GPT-3.5 plateaus: the K=20 gain over K=10 is marginal
    gpt35 = series["gpt-3.5-w-shell"]
    assert gpt35[20] - gpt35[10] <= 0.25
