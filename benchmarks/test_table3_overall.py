"""Table 3: overall agent performance over the 48-problem benchmark.

Shape targets (paper): FLASH and ReAct above GPT-4, GPT-3.5 far last;
GPT-3.5 takes the most steps; ReAct produces the most output tokens.
Absolute numbers differ (simulated substrate) — orderings must hold.
"""

from repro.bench import render_table, table3_overall


def test_table3_overall(benchmark, suite_results):
    headers, rows = benchmark(table3_overall, suite_results)
    print()
    print(render_table(headers, rows, "Table 3 — overall agent performance"))

    acc = {r[0]: float(r[5].rstrip("%")) for r in rows}
    steps = {r[0]: float(r[3]) for r in rows}
    time_s = {r[0]: float(r[2]) for r in rows}

    # who wins: the two structured agents beat the naive GPT-4 shell agent
    assert max(acc["FLASH"], acc["REACT"]) > acc["GPT-4-W-SHELL"]
    # GPT-3.5 collapses (paper: 15% vs 49-59% for the rest)
    assert acc["GPT-3.5-W-SHELL"] < acc["GPT-4-W-SHELL"] / 1.5
    # GPT-3.5 wanders: most steps of all agents
    assert steps["GPT-3.5-W-SHELL"] == max(steps.values())
    # FLASH's hindsight pass makes it the slowest per problem
    assert time_s["FLASH"] == max(time_s.values())
